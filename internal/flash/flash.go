// Package flash models a NAND flash complex: channels × packages ×
// dies × planes with per-die occupancy, per-channel data buses, page
// program/read/erase state rules, and functional page data. Two media
// are provided: Z-NAND (the ULL-Flash medium, SLC-like 3 µs reads /
// 100 µs programs, §II-C) and conventional V-NAND TLC (the baseline
// NVMe SSD medium).
package flash

import (
	"fmt"

	"hams/internal/sim"
)

// Timing carries the medium's operation latencies.
type Timing struct {
	TRead   sim.Time // page read (cell array -> page register)
	TProg   sim.Time // page program
	TErase  sim.Time // block erase
	ChanGBs float64  // per-channel transfer bandwidth
}

// ZNAND returns the Z-NAND timing from the paper (3 µs / 100 µs).
func ZNAND() Timing {
	return Timing{
		TRead:   3 * sim.Microsecond,
		TProg:   100 * sim.Microsecond,
		TErase:  1 * sim.Millisecond,
		ChanGBs: 1.2,
	}
}

// VNANDTLC returns conventional TLC timing: the paper cites Z-NAND as
// 15x / 7x faster for read / write than V-NAND.
func VNANDTLC() Timing {
	return Timing{
		TRead:   45 * sim.Microsecond,
		TProg:   700 * sim.Microsecond,
		TErase:  5 * sim.Millisecond,
		ChanGBs: 0.8,
	}
}

// Geometry describes the physical organization.
type Geometry struct {
	Channels     int
	PackagesPerC int
	DiesPerPkg   int
	PlanesPerDie int
	BlocksPerPln int
	PagesPerBlk  int
	PageBytes    uint64
}

// ULLGeometry returns the 800 GB-class 16-channel Z-NAND geometry of
// the paper's prototype (§II-C, Table II). The FTL allocates lazily,
// so the large block count costs only per-plane free lists.
func ULLGeometry() Geometry {
	return Geometry{
		Channels:     16,
		PackagesPerC: 2,
		DiesPerPkg:   2,
		PlanesPerDie: 2,
		BlocksPerPln: 6400,
		PagesPerBlk:  256,
		PageBytes:    4096,
	}
}

// Dies returns the total number of dies.
func (g Geometry) Dies() int { return g.Channels * g.PackagesPerC * g.DiesPerPkg }

// Planes returns the total number of planes.
func (g Geometry) Planes() int { return g.Dies() * g.PlanesPerDie }

// Blocks returns the total number of blocks.
func (g Geometry) Blocks() int { return g.Planes() * g.BlocksPerPln }

// TotalPages returns the number of physical pages.
func (g Geometry) TotalPages() uint64 {
	return uint64(g.Blocks()) * uint64(g.PagesPerBlk)
}

// Capacity returns the raw capacity in bytes.
func (g Geometry) Capacity() uint64 { return g.TotalPages() * g.PageBytes }

// PPN is a physical page number in [0, TotalPages).
type PPN uint64

// Addr decomposes a PPN. Pages are striped so that consecutive PPNs
// rotate across channels first, then dies, then planes — giving maximal
// parallelism for sequential physical allocation.
type Addr struct {
	Channel, Package, Die, Plane, Block, Page int
}

// Decompose splits a PPN into its physical coordinates.
func (g Geometry) Decompose(p PPN) Addr {
	v := uint64(p)
	ch := int(v % uint64(g.Channels))
	v /= uint64(g.Channels)
	pkg := int(v % uint64(g.PackagesPerC))
	v /= uint64(g.PackagesPerC)
	die := int(v % uint64(g.DiesPerPkg))
	v /= uint64(g.DiesPerPkg)
	pln := int(v % uint64(g.PlanesPerDie))
	v /= uint64(g.PlanesPerDie)
	pg := int(v % uint64(g.PagesPerBlk))
	v /= uint64(g.PagesPerBlk)
	blk := int(v)
	return Addr{Channel: ch, Package: pkg, Die: die, Plane: pln, Block: blk, Page: pg}
}

// Compose is the inverse of Decompose.
func (g Geometry) Compose(a Addr) PPN {
	v := uint64(a.Block)
	v = v*uint64(g.PagesPerBlk) + uint64(a.Page)
	v = v*uint64(g.PlanesPerDie) + uint64(a.Plane)
	v = v*uint64(g.DiesPerPkg) + uint64(a.Die)
	v = v*uint64(g.PackagesPerC) + uint64(a.Package)
	v = v*uint64(g.Channels) + uint64(a.Channel)
	return PPN(v)
}

// GlobalDie returns the flat die index for occupancy tracking.
func (g Geometry) GlobalDie(a Addr) int {
	return (a.Channel*g.PackagesPerC+a.Package)*g.DiesPerPkg + a.Die
}

// BlockID flattens (plane-level) block coordinates for erase tracking.
func (g Geometry) BlockID(a Addr) uint64 {
	plane := uint64(g.GlobalDie(a))*uint64(g.PlanesPerDie) + uint64(a.Plane)
	return plane*uint64(g.BlocksPerPln) + uint64(a.Block)
}

// Stats aggregates flash activity for the energy model.
type Stats struct {
	Reads, Programs, Erases int64
	BytesIn, BytesOut       int64
	DieBusy                 sim.Time
}

// Array is the flash complex.
type Array struct {
	Geo Geometry
	Tim Timing

	dies  []sim.Time // next-free per die
	chans []*sim.Resource
	// data holds the content of every programmed page. A page is
	// "written" (NAND protocol state) exactly when it has a data entry;
	// erase removes the entry and recycles its buffer through freeBufs
	// so steady-state program/erase cycles stop allocating.
	data     map[PPN][]byte
	freeBufs [][]byte
	erases   map[uint64]int64 // blockID -> erase count (wear)
	stats    Stats
}

// New builds an array from a geometry and timing.
func New(g Geometry, t Timing) *Array {
	a := &Array{
		Geo:   g,
		Tim:   t,
		dies:  make([]sim.Time, g.Dies()),
		chans: make([]*sim.Resource, g.Channels),
		data:  make(map[PPN][]byte),

		erases: make(map[uint64]int64),
	}
	for i := range a.chans {
		a.chans[i] = sim.NewResource()
	}
	return a
}

// Stats returns a copy of the counters.
func (a *Array) Stats() Stats { return a.stats }

// ResetStats zeroes the counters.
func (a *Array) ResetStats() { a.stats = Stats{} }

// Written reports whether ppn holds programmed data.
func (a *Array) Written(p PPN) bool {
	_, ok := a.data[p]
	return ok
}

// EraseCount returns the wear of the block containing ppn.
func (a *Array) EraseCount(p PPN) int64 {
	return a.erases[a.Geo.BlockID(a.Geo.Decompose(p))]
}

func (a *Array) dieOf(p PPN) int { return a.Geo.GlobalDie(a.Geo.Decompose(p)) }

// xferBytes returns the clamped transfer size for partial-page ops.
func (a *Array) xferBytes(n uint32) int64 {
	if n == 0 || uint64(n) > a.Geo.PageBytes {
		return int64(a.Geo.PageBytes)
	}
	return int64(n)
}

// readTiming charges the die and channel for a read of n transfer
// bytes and returns the completion time.
func (a *Array) readTiming(t sim.Time, ad Addr, n int64) sim.Time {
	die := a.Geo.GlobalDie(ad)
	start := t
	if a.dies[die] > start {
		start = a.dies[die]
	}
	cellDone := start + a.Tim.TRead
	a.dies[die] = cellDone
	a.stats.DieBusy += a.Tim.TRead
	_, done := a.chans[ad.Channel].Acquire(cellDone, sim.Bandwidth(n, a.Tim.ChanGBs))
	a.stats.Reads++
	a.stats.BytesOut += n
	return done
}

// ReadPage performs a flash read of up to bytes (0 = full page) from
// ppn arriving at t: the die is busy for TRead, then the data crosses
// the channel bus. It returns the completion time and the page data.
func (a *Array) ReadPage(t sim.Time, p PPN, bytes uint32) (sim.Time, []byte) {
	done := a.readTiming(t, a.Geo.Decompose(p), a.xferBytes(bytes))
	var buf []byte
	if d, ok := a.data[p]; ok {
		buf = make([]byte, len(d))
		copy(buf, d)
	} else {
		buf = make([]byte, a.Geo.PageBytes)
	}
	return done, buf
}

// ReadPageInto is the allocation-free ReadPage: the page content lands
// in dst (zero-filled past the stored data; dst longer than a page is
// zero-filled to the page size). A nil dst charges timing only.
func (a *Array) ReadPageInto(t sim.Time, p PPN, bytes uint32, dst []byte) sim.Time {
	done := a.readTiming(t, a.Geo.Decompose(p), a.xferBytes(bytes))
	if dst == nil {
		return done
	}
	if uint64(len(dst)) > a.Geo.PageBytes {
		dst = dst[:a.Geo.PageBytes]
	}
	n := copy(dst, a.data[p])
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return done
}

// ErrProgramWritten is returned when programming a non-erased page,
// which would be a NAND protocol violation (FTL bug).
var ErrProgramWritten = fmt.Errorf("flash: program to non-erased page")

// ProgramPage programs data into ppn arriving at t: the data crosses
// the channel bus, then the die is busy for TProg. Programming a page
// that has not been erased since its last program returns an error.
func (a *Array) ProgramPage(t sim.Time, p PPN, data []byte) (sim.Time, error) {
	if _, ok := a.data[p]; ok {
		return t, ErrProgramWritten
	}
	ad := a.Geo.Decompose(p)
	die := a.Geo.GlobalDie(ad)
	n := int64(a.Geo.PageBytes) // programs always move a full page
	_, xferDone := a.chans[ad.Channel].Acquire(t, sim.Bandwidth(n, a.Tim.ChanGBs))
	start := xferDone
	if a.dies[die] > start {
		start = a.dies[die]
	}
	done := start + a.Tim.TProg
	a.dies[die] = done
	a.stats.DieBusy += a.Tim.TProg
	a.stats.Programs++
	a.stats.BytesIn += n

	var stored []byte
	if k := len(a.freeBufs); k > 0 {
		stored = a.freeBufs[k-1]
		a.freeBufs = a.freeBufs[:k-1]
	} else {
		stored = make([]byte, a.Geo.PageBytes)
	}
	m := copy(stored, data)
	for i := m; i < len(stored); i++ {
		stored[i] = 0
	}
	a.data[p] = stored
	return done, nil
}

// EraseBlock erases the block containing ppn, invalidating every page
// in it. It returns the completion time.
func (a *Array) EraseBlock(t sim.Time, p PPN) sim.Time {
	ad := a.Geo.Decompose(p)
	die := a.Geo.GlobalDie(ad)
	start := t
	if a.dies[die] > start {
		start = a.dies[die]
	}
	done := start + a.Tim.TErase
	a.dies[die] = done
	a.stats.DieBusy += a.Tim.TErase
	a.stats.Erases++
	bid := a.Geo.BlockID(ad)
	a.erases[bid]++
	// Clear every page of the block.
	base := Addr{Channel: ad.Channel, Package: ad.Package, Die: ad.Die, Plane: ad.Plane, Block: ad.Block}
	for pg := 0; pg < a.Geo.PagesPerBlk; pg++ {
		base.Page = pg
		ppn := a.Geo.Compose(base)
		if d, ok := a.data[ppn]; ok {
			// Restored stale pages carry an elided (empty) payload —
			// only full-size buffers are safe to recycle into programs.
			if uint64(len(d)) == a.Geo.PageBytes {
				a.freeBufs = append(a.freeBufs, d)
			}
			delete(a.data, ppn)
		}
	}
	return done
}

// DieNextFree exposes die occupancy (for queue-depth experiments).
func (a *Array) DieNextFree(i int) sim.Time { return a.dies[i] }

// PeekPage returns the stored page data without any timing effect.
// Used by functional (non-timed) inspection paths.
func (a *Array) PeekPage(p PPN) []byte {
	if d, ok := a.data[p]; ok {
		buf := make([]byte, len(d))
		copy(buf, d)
		return buf
	}
	return make([]byte, a.Geo.PageBytes)
}

func (a *Array) String() string {
	return fmt.Sprintf("flash(%dch x %dpkg x %ddie, %s read)",
		a.Geo.Channels, a.Geo.PackagesPerC, a.Geo.DiesPerPkg, a.Tim.TRead)
}
