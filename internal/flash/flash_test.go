package flash

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hams/internal/sim"
)

func smallGeo() Geometry {
	return Geometry{
		Channels: 4, PackagesPerC: 1, DiesPerPkg: 2, PlanesPerDie: 2,
		BlocksPerPln: 8, PagesPerBlk: 16, PageBytes: 4096,
	}
}

func TestGeometryCounts(t *testing.T) {
	g := smallGeo()
	if g.Dies() != 8 {
		t.Fatalf("Dies() = %d", g.Dies())
	}
	if g.Planes() != 16 {
		t.Fatalf("Planes() = %d", g.Planes())
	}
	if g.Blocks() != 128 {
		t.Fatalf("Blocks() = %d", g.Blocks())
	}
	if g.TotalPages() != 128*16 {
		t.Fatalf("TotalPages() = %d", g.TotalPages())
	}
	if g.Capacity() != 128*16*4096 {
		t.Fatalf("Capacity() = %d", g.Capacity())
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	g := smallGeo()
	f := func(raw uint32) bool {
		p := PPN(uint64(raw) % g.TotalPages())
		return g.Compose(g.Decompose(p)) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestConsecutivePPNsRotateChannels(t *testing.T) {
	g := smallGeo()
	for i := 0; i < g.Channels; i++ {
		if got := g.Decompose(PPN(i)).Channel; got != i {
			t.Fatalf("PPN %d on channel %d, want %d", i, got, i)
		}
	}
}

func TestReadProgramRoundTrip(t *testing.T) {
	a := New(smallGeo(), ZNAND())
	data := []byte("z-nand page payload")
	done, err := a.ProgramPage(0, 7, data)
	if err != nil {
		t.Fatal(err)
	}
	if done < ZNAND().TProg {
		t.Fatalf("program done=%v, want >= %v", done, ZNAND().TProg)
	}
	rdDone, got := a.ReadPage(done, 7, 0)
	if rdDone < done+ZNAND().TRead {
		t.Fatalf("read done=%v", rdDone)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("got %q", got[:len(data)])
	}
	if !a.Written(7) {
		t.Fatal("Written(7) = false")
	}
}

func TestReadUnwrittenReturnsZeroPage(t *testing.T) {
	a := New(smallGeo(), ZNAND())
	_, got := a.ReadPage(0, 3, 0)
	if len(got) != 4096 {
		t.Fatalf("len = %d", len(got))
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten page must read as zero")
		}
	}
}

func TestProgramWithoutEraseFails(t *testing.T) {
	a := New(smallGeo(), ZNAND())
	if _, err := a.ProgramPage(0, 5, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ProgramPage(0, 5, []byte{2}); err != ErrProgramWritten {
		t.Fatalf("second program err = %v, want ErrProgramWritten", err)
	}
}

func TestEraseEnablesReprogram(t *testing.T) {
	a := New(smallGeo(), ZNAND())
	a.ProgramPage(0, 5, []byte{1})
	done := a.EraseBlock(0, 5)
	if done < ZNAND().TErase {
		t.Fatalf("erase done = %v", done)
	}
	if a.Written(5) {
		t.Fatal("page still written after erase")
	}
	if _, err := a.ProgramPage(done, 5, []byte{2}); err != nil {
		t.Fatalf("reprogram after erase: %v", err)
	}
	if a.EraseCount(5) != 1 {
		t.Fatalf("EraseCount = %d", a.EraseCount(5))
	}
}

func TestEraseClearsWholeBlockOnly(t *testing.T) {
	g := smallGeo()
	a := New(g, ZNAND())
	// Two pages in the same block (same channel/die/plane coords).
	ad := g.Decompose(0)
	ad.Page = 0
	p0 := g.Compose(ad)
	ad.Page = 1
	p1 := g.Compose(ad)
	// A page in a different block.
	ad2 := g.Decompose(0)
	ad2.Block = 1
	pOther := g.Compose(ad2)

	a.ProgramPage(0, p0, []byte{1})
	a.ProgramPage(0, p1, []byte{2})
	a.ProgramPage(0, pOther, []byte{3})
	a.EraseBlock(0, p0)
	if a.Written(p0) || a.Written(p1) {
		t.Fatal("erase must clear all pages in the block")
	}
	if !a.Written(pOther) {
		t.Fatal("erase must not touch other blocks")
	}
}

func TestDieContentionSerializes(t *testing.T) {
	g := smallGeo()
	a := New(g, ZNAND())
	// Two reads to the same die at t=0 serialize on the die.
	d1, _ := a.ReadPage(0, 0, 0)
	sameDie := g.Compose(Addr{Block: 1}) // same ch/pkg/die/plane, diff block
	d2, _ := a.ReadPage(0, sameDie, 0)
	if d2 < d1+ZNAND().TRead {
		t.Fatalf("same-die reads overlapped: %v then %v", d1, d2)
	}
	// Reads to different channels overlap.
	b := New(g, ZNAND())
	e1, _ := b.ReadPage(0, 0, 0)
	e2, _ := b.ReadPage(0, 1, 0) // channel 1
	if e2 > e1+100 {
		t.Fatalf("cross-channel reads serialized: %v vs %v", e1, e2)
	}
}

func TestPartialTransferFaster(t *testing.T) {
	a := New(smallGeo(), ZNAND())
	full, _ := a.ReadPage(0, 0, 0)
	b := New(smallGeo(), ZNAND())
	half, _ := b.ReadPage(0, 0, 2048)
	if half >= full {
		t.Fatalf("2KB transfer (%v) must beat 4KB (%v)", half, full)
	}
}

func TestZNANDFasterThanTLC(t *testing.T) {
	z := New(smallGeo(), ZNAND())
	v := New(smallGeo(), VNANDTLC())
	zd, _ := z.ReadPage(0, 0, 0)
	vd, _ := v.ReadPage(0, 0, 0)
	if zd >= vd {
		t.Fatalf("Z-NAND read (%v) must beat TLC (%v)", zd, vd)
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := New(smallGeo(), ZNAND())
	a.ProgramPage(0, 0, []byte{1})
	a.ReadPage(0, 0, 0)
	a.EraseBlock(0, 0)
	st := a.Stats()
	if st.Programs != 1 || st.Reads != 1 || st.Erases != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesIn != 4096 || st.BytesOut != 4096 {
		t.Fatalf("bytes = %+v", st)
	}
	a.ResetStats()
	if a.Stats().Reads != 0 {
		t.Fatal("ResetStats")
	}
}

// Property: programmed data reads back identically until erased, for
// random programs over distinct erased pages.
func TestDataIntegrityProperty(t *testing.T) {
	g := smallGeo()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(g, ZNAND())
		want := make(map[PPN][]byte)
		var now sim.Time
		for i := 0; i < 50; i++ {
			p := PPN(rng.Intn(int(g.TotalPages())))
			if _, dup := want[p]; dup {
				continue
			}
			data := make([]byte, 128)
			rng.Read(data)
			done, err := a.ProgramPage(now, p, data)
			if err != nil {
				return false
			}
			now = done
			want[p] = data
		}
		for p, w := range want {
			_, got := a.ReadPage(now, p, 0)
			if !bytes.Equal(got[:len(w)], w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
