package flash

import (
	"fmt"
	"sort"

	"hams/internal/checkpoint"
	"hams/internal/sim"
)

// SaveState serializes the array: per-die and per-channel timing
// horizons, every programmed page (sorted by PPN for a deterministic
// wire image), the per-block wear counters and the activity stats. The
// free-buffer recycling pool is host-side scratch with no simulated
// effect and is not serialized.
//
// live, when non-nil, marks which programmed pages still back a
// mapped LBA. Stale pages keep their programmed status on the wire —
// it gates re-programming until an erase — but their payloads are
// dead (nothing reads a page the translation layer has invalidated)
// and are elided as empty blobs. On a write-heavy out-of-place
// workload this shrinks the image by the whole overwrite history.
func (a *Array) SaveState(enc *checkpoint.Enc, live func(PPN) bool) {
	enc.Count(len(a.dies))
	for _, d := range a.dies {
		enc.I64(int64(d))
	}
	enc.Count(len(a.chans))
	for _, c := range a.chans {
		c.SaveState(enc)
	}
	ppns := make([]uint64, 0, len(a.data))
	for p := range a.data {
		ppns = append(ppns, uint64(p))
	}
	sort.Slice(ppns, func(i, j int) bool { return ppns[i] < ppns[j] })
	enc.Count(len(ppns))
	for _, p := range ppns {
		enc.U64(p)
		if live != nil && !live(PPN(p)) {
			enc.Page(nil)
			continue
		}
		enc.Page(a.data[PPN(p)])
	}
	blocks := make([]uint64, 0, len(a.erases))
	for b := range a.erases {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	enc.Count(len(blocks))
	for _, b := range blocks {
		enc.U64(b)
		enc.I64(a.erases[b])
	}
	enc.I64(a.stats.Reads)
	enc.I64(a.stats.Programs)
	enc.I64(a.stats.Erases)
	enc.I64(a.stats.BytesIn)
	enc.I64(a.stats.BytesOut)
	enc.I64(int64(a.stats.DieBusy))
}

// RestoreState overlays the array. Die/channel counts are structural;
// page payload lengths are validated against the geometry's page size.
func (a *Array) RestoreState(d *checkpoint.Dec) error {
	if err := restoreCount(d, "dies", len(a.dies)); err != nil {
		return err
	}
	for i := range a.dies {
		a.dies[i] = sim.Time(d.I64())
	}
	if err := restoreCount(d, "channels", len(a.chans)); err != nil {
		return err
	}
	for _, c := range a.chans {
		if err := c.RestoreState(d); err != nil {
			return err
		}
	}
	npages := d.CountSized(8)
	if err := d.Err(); err != nil {
		return err
	}
	a.data = make(map[PPN][]byte, npages)
	for i := 0; i < npages; i++ {
		p := d.U64()
		pg := d.Page(int(a.Geo.PageBytes))
		if err := d.Err(); err != nil {
			return err
		}
		// Programs always store a full page; an empty payload is a
		// stale page whose content the encoder elided (presence still
		// gates re-programming). Anything else is a corrupt image.
		if len(pg) != 0 && uint64(len(pg)) != a.Geo.PageBytes {
			return fmt.Errorf("%w: page %d holds %d bytes (page is %d)",
				checkpoint.ErrCorrupt, p, len(pg), a.Geo.PageBytes)
		}
		a.data[PPN(p)] = pg
	}
	nblocks := d.CountSized(16)
	if err := d.Err(); err != nil {
		return err
	}
	a.erases = make(map[uint64]int64, nblocks)
	for i := 0; i < nblocks; i++ {
		b := d.U64()
		a.erases[b] = d.I64()
	}
	a.stats.Reads = d.I64()
	a.stats.Programs = d.I64()
	a.stats.Erases = d.I64()
	a.stats.BytesIn = d.I64()
	a.stats.BytesOut = d.I64()
	a.stats.DieBusy = sim.Time(d.I64())
	return d.Err()
}

// restoreCount reads a count that must equal a structural size.
func restoreCount(d *checkpoint.Dec, what string, want int) error {
	n := d.Count(want)
	if err := d.Err(); err != nil {
		return err
	}
	if n != want {
		return fmt.Errorf("%w: %s count %d, want %d", checkpoint.ErrMismatch, what, n, want)
	}
	return nil
}
