package bus

import (
	"testing"

	"hams/internal/sim"
)

func TestLockRegisterLifecycle(t *testing.T) {
	b := New(DDR4Channel())
	if b.Locked() {
		t.Fatal("new bus must be unlocked")
	}
	b.SetLock(100)
	if !b.Locked() {
		t.Fatal("SetLock failed")
	}
	b.SetLock(110) // idempotent
	b.ReleaseLock(200)
	if b.Locked() {
		t.Fatal("ReleaseLock failed")
	}
	st := b.Stats()
	if st.LockSets != 1 {
		t.Fatalf("LockSets = %d, want 1 (idempotent)", st.LockSets)
	}
	if st.LockedTime != 100 {
		t.Fatalf("LockedTime = %v, want 100", st.LockedTime)
	}
}

func TestMemAccessBlockedWhileLocked(t *testing.T) {
	b := New(DDR4Channel())
	b.SetLock(0)
	if _, err := b.MemAccess(10, 64); err != ErrLocked {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
	b.ReleaseLock(50)
	done, err := b.MemAccess(50, 64)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 50 {
		t.Fatalf("done = %v", done)
	}
	if b.Stats().LockWaits != 1 {
		t.Fatalf("LockWaits = %d", b.Stats().LockWaits)
	}
}

func TestDMARequiresLock(t *testing.T) {
	b := New(DDR4Channel())
	defer func() {
		if recover() == nil {
			t.Fatal("DMA without lock must panic (hazard bug)")
		}
	}()
	b.DMA(0, 4096)
}

func TestDMABandwidth(t *testing.T) {
	b := New(DDR4Channel())
	b.SetLock(0)
	// 128 KiB at 20 GB/s ≈ 6554 ns.
	done := b.DMA(0, 128*1024)
	want := sim.Bandwidth(128*1024, 20)
	if done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestSendCommandCost(t *testing.T) {
	b := New(DDR4Channel())
	done := b.SendCommand(0)
	// 2 command cycles + max(64B burst, 8 beats) >= 8 ns at 1ns tCK.
	if done < 10 {
		t.Fatalf("command burst too cheap: %v", done)
	}
	if done > 100 {
		t.Fatalf("command burst too expensive: %v", done)
	}
	if b.Stats().CmdBursts != 1 {
		t.Fatal("CmdBursts not counted")
	}
}

func TestBusSerializesDMAAndCommands(t *testing.T) {
	b := New(DDR4Channel())
	b.SetLock(0)
	d1 := b.DMA(0, 4096)
	b.ReleaseLock(d1)
	// A command burst issued at t=0 must queue behind the DMA.
	d2 := b.SendCommand(0)
	if d2 <= d1 {
		t.Fatalf("command (%v) overlapped DMA (%v)", d2, d1)
	}
}

func TestDataMovedAccounting(t *testing.T) {
	b := New(DDR4Channel())
	b.SetLock(0)
	b.DMA(0, 1000)
	b.ReleaseLock(1000)
	b.MemAccess(2000, 500)
	if got := b.Stats().DataMoved; got != 1500 {
		t.Fatalf("DataMoved = %d", got)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	b := New(Config{})
	if done := b.SendCommand(0); done <= 0 {
		t.Fatal("default config must be usable")
	}
}
