// Package bus models the shared DDR4 channel of advanced HAMS: the
// HAMS controller, one or more NVDIMMs and the unboxed ULL-Flash all
// hang off one memory bus. Arbitration between the memory controller
// and the NVMe controller uses the paper's lock register (§IV-C), and
// commands reach the flash device over the register-based interface —
// a 64 B NVMe command delivered as a DDR4 write burst (Figure 12).
package bus

import (
	"errors"

	"hams/internal/sim"
)

// Config carries the DDR4 electrical budget for the shared channel.
type Config struct {
	GBs        float64  // channel bandwidth
	TCK        sim.Time // clock period (command cycles are counted in tCK)
	BurstBeats int      // beats per burst (BL8)
}

// DDR4Channel returns the paper's shared-channel budget.
func DDR4Channel() Config { return Config{GBs: 20, TCK: 1, BurstBeats: 8} }

// SharedBus is the arbitrated DDR4 channel.
type SharedBus struct {
	cfg Config
	bus *sim.Resource

	lock       bool // lock register: NVMe controller owns the bus
	lockSets   int64
	lockWaits  int64
	cmdBursts  int64
	dataMoved  int64
	lockedTime sim.Time
	lockSince  sim.Time
}

// New builds the shared channel.
func New(cfg Config) *SharedBus {
	if cfg.GBs == 0 {
		cfg = DDR4Channel()
	}
	return &SharedBus{cfg: cfg, bus: sim.NewResource()}
}

// ErrLocked is returned when the memory controller attempts a transfer
// while the NVMe controller holds the lock register.
var ErrLocked = errors.New("bus: lock register held by NVMe controller")

// Locked reports the lock-register state.
func (b *SharedBus) Locked() bool { return b.lock }

// SetLock asserts the lock register at time t (HAMS grants the bus to
// the NVMe controller for a DMA).
func (b *SharedBus) SetLock(t sim.Time) {
	if !b.lock {
		b.lock = true
		b.lockSets++
		b.lockSince = t
	}
}

// ReleaseLock deasserts the lock register at time t.
func (b *SharedBus) ReleaseLock(t sim.Time) {
	if b.lock {
		b.lock = false
		b.lockedTime += t - b.lockSince
	}
}

// SendCommand delivers one 64 B NVMe command over the register-based
// interface: deselect NVDIMM (1 tCK), write command setup (1 tCK),
// then an 8-beat data burst carrying the 64 bytes. Returns completion.
func (b *SharedBus) SendCommand(t sim.Time) sim.Time {
	setup := 2 * b.cfg.TCK
	burst := sim.Bandwidth(64, b.cfg.GBs)
	if beats := sim.Time(b.cfg.BurstBeats) * b.cfg.TCK; burst < beats {
		burst = beats
	}
	_, done := b.bus.Acquire(t, setup+burst)
	b.cmdBursts++
	return done
}

// DMA streams bytes across the channel on behalf of the NVMe
// controller. The caller must hold the lock register; this is asserted
// because a violation is a hazard bug, not a recoverable condition.
func (b *SharedBus) DMA(t sim.Time, bytes int64) sim.Time {
	if !b.lock {
		panic("bus: DMA without lock register held")
	}
	_, done := b.bus.Acquire(t, sim.Bandwidth(bytes, b.cfg.GBs))
	b.dataMoved += bytes
	return done
}

// MemAccess reserves the channel for a memory-controller transfer of
// bytes. If the lock register is held, the transfer is delayed to
// lockFreeAt (the caller learns when the DMA completes and retries);
// it returns ErrLocked so the cache logic can account the stall.
func (b *SharedBus) MemAccess(t sim.Time, bytes int64) (sim.Time, error) {
	if b.lock {
		b.lockWaits++
		return t, ErrLocked
	}
	_, done := b.bus.Acquire(t, sim.Bandwidth(bytes, b.cfg.GBs))
	b.dataMoved += bytes
	return done, nil
}

// Stats exposes arbitration counters.
type Stats struct {
	LockSets   int64
	LockWaits  int64
	CmdBursts  int64
	DataMoved  int64
	LockedTime sim.Time
}

// Stats returns a copy of the counters.
func (b *SharedBus) Stats() Stats {
	return Stats{
		LockSets: b.lockSets, LockWaits: b.lockWaits,
		CmdBursts: b.cmdBursts, DataMoved: b.dataMoved, LockedTime: b.lockedTime,
	}
}
