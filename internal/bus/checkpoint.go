package bus

import (
	"hams/internal/checkpoint"
	"hams/internal/sim"
)

// SaveState serializes the channel: the shared server, the lock
// register and the burst/lock accounting.
func (b *SharedBus) SaveState(enc *checkpoint.Enc) {
	b.bus.SaveState(enc)
	enc.Bool(b.lock)
	enc.I64(b.lockSets)
	enc.I64(b.lockWaits)
	enc.I64(b.cmdBursts)
	enc.I64(b.dataMoved)
	enc.I64(int64(b.lockedTime))
	enc.I64(int64(b.lockSince))
}

// RestoreState overlays the channel.
func (b *SharedBus) RestoreState(d *checkpoint.Dec) error {
	if err := b.bus.RestoreState(d); err != nil {
		return err
	}
	b.lock = d.Bool()
	b.lockSets = d.I64()
	b.lockWaits = d.I64()
	b.cmdBursts = d.I64()
	b.dataMoved = d.I64()
	b.lockedTime = sim.Time(d.I64())
	b.lockSince = sim.Time(d.I64())
	return d.Err()
}
