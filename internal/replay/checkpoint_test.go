package replay_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"hams/internal/checkpoint"
	"hams/internal/mem"
	"hams/internal/platform"
	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/sim"
)

// cpScenario is the checkpoint tests' workhorse: a contended two-
// tenant co-location on a small NVDIMM, so the warm-up phase leaves
// nontrivial state in every layer (tag arrays, FTL maps, QoS
// counters) for the checkpoint to carry.
func cpScenario(warmup int64) replay.Scenario {
	return replay.Scenario{
		Name:     "cp",
		Platform: "hams-LE",
		PlatOpts: platform.Options{HAMSWays: 4, HAMSNVDIMM: 64 * mem.MiB, HAMSMSHRs: 4},
		QoS: &qos.Table{Classes: []qos.Class{
			{Name: "svc", WayMask: 0x3},
			{Name: "bulk", WayMask: 0xc},
		}},
		Tenants: []replay.Tenant{
			{Name: "svc", Workload: "rndRd", Seed: 11, Class: "svc",
				Scale: 2e-6, Hot: 4 * mem.MiB, HotFrac: 0.8},
			{Name: "bulk", Workload: "rndWr", Seed: 22, Class: "bulk",
				Scale: 2e-6, Base: 64 * mem.GiB},
		},
		Warmup: warmup,
	}
}

// TestRestoreMatchesLive is the subsystem's central guarantee: a
// measured phase continued live after a warm-up and a measured phase
// resumed from a checkpoint of that warm-up produce bit-identical
// results — the full Result struct, CPU stats and latency percentiles
// and QoS counters included.
func TestRestoreMatchesLive(t *testing.T) {
	const warmup = 40
	o := replay.Options{}

	live, err := replay.Run(cpScenario(warmup), o)
	if err != nil {
		t.Fatal(err)
	}
	if live.CPU.Instructions == 0 || live.Units == 0 {
		t.Fatalf("measured phase did no work: %+v", live.CPU)
	}

	img, err := replay.Warmup(cpScenario(warmup), o)
	if err != nil {
		t.Fatal(err)
	}
	if img.Warmup != warmup || img.SimTime <= 0 {
		t.Fatalf("image header = warmup %d simTime %d", img.Warmup, img.SimTime)
	}

	restoredSc := cpScenario(0)
	restoredSc.Checkpoint = img
	restored, err := replay.Run(restoredSc, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, restored) {
		t.Fatalf("restored run diverged from live:\nlive     %+v\nrestored %+v", live, restored)
	}

	// Fan-out determinism: a second restore from the same image is
	// equally identical (restore mutates nothing in the image).
	sc2 := cpScenario(warmup)
	sc2.Checkpoint = img
	again, err := replay.Run(sc2, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, again) {
		t.Fatal("second restore from the same image diverged")
	}
}

// TestRestoreAfterWireRoundTrip proves the wire format carries the
// whole state: the image is encoded to bytes, decoded back, and the
// restored run still matches the live one bit-for-bit.
func TestRestoreAfterWireRoundTrip(t *testing.T) {
	const warmup = 40
	o := replay.Options{}
	live, err := replay.Run(cpScenario(warmup), o)
	if err != nil {
		t.Fatal(err)
	}
	img, err := replay.Warmup(cpScenario(warmup), o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := checkpoint.Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	decoded, err := checkpoint.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sc := cpScenario(0)
	sc.Checkpoint = decoded
	restored, err := replay.Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, restored) {
		t.Fatalf("wire round trip lost state:\nlive     %+v\nrestored %+v", live, restored)
	}
}

// TestSLOTrajectoryRestored extends the guarantee to the AIMD
// feedback controller: its reconfiguration trajectory — part of the
// platform state the image carries — continues identically after a
// restore.
func TestSLOTrajectoryRestored(t *testing.T) {
	base := func() replay.Scenario {
		sc := sloScenario(t, false)
		sc.Warmup = 30
		return sc
	}
	o := replay.Options{}
	live, err := replay.Run(base(), o)
	if err != nil {
		t.Fatal(err)
	}
	img, err := replay.Warmup(base(), o)
	if err != nil {
		t.Fatal(err)
	}
	sc := base()
	sc.Warmup = 0
	sc.Checkpoint = img
	restored, err := replay.Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, restored) {
		t.Fatalf("SLO trajectory diverged after restore:\nlive     %+v\nrestored %+v", live, restored)
	}
}

// TestSampledStats: interval sampling produces a strict subset of the
// full measurement without perturbing it.
func TestSampledStats(t *testing.T) {
	o := replay.Options{}
	full, err := replay.Run(cpScenario(0), o)
	if err != nil {
		t.Fatal(err)
	}
	sc := cpScenario(0)
	sc.Sample = checkpoint.Sampler{Measure: 20 * int64(sim.Microsecond), Skip: 80 * int64(sim.Microsecond)}
	sampled, err := replay.Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Sampled == nil {
		t.Fatal("Sampled stats missing")
	}
	// Observation gating must not perturb the simulation.
	if full.CPU != sampled.CPU || full.Units != sampled.Units {
		t.Fatalf("sampling perturbed the run:\nfull    %+v\nsampled %+v", full.CPU, sampled.CPU)
	}
	var fullAcc, sampAcc int64
	for i := range sampled.Sampled {
		fullAcc += sampled.Tenants[i].Accesses
		sampAcc += sampled.Sampled[i].Accesses
	}
	if sampAcc <= 0 || sampAcc >= fullAcc {
		t.Fatalf("sampled %d of %d accesses, want a strict nonempty subset", sampAcc, fullAcc)
	}
}

// TestCheckpointValidation covers the refusal paths: bad warm-up
// configs, platform mismatches and unsupported platforms all fail
// with typed errors before any simulation state is touched.
func TestCheckpointValidation(t *testing.T) {
	o := replay.Options{}
	if _, err := replay.Warmup(cpScenario(0), o); err == nil {
		t.Fatal("Warmup accepted a zero warm-up")
	}
	img, err := replay.Warmup(cpScenario(40), o)
	if err != nil {
		t.Fatal(err)
	}
	sc := cpScenario(40)
	sc.Checkpoint = img
	if _, err := replay.Warmup(sc, o); err == nil {
		t.Fatal("Warmup accepted a checkpoint-restoring scenario")
	}

	contradicting := cpScenario(41)
	contradicting.Checkpoint = img
	if _, err := replay.Run(contradicting, o); err == nil {
		t.Fatal("Run accepted a warm-up contradicting the image")
	}

	wrongPlat := cpScenario(0)
	wrongPlat.Platform = "hams-TE"
	wrongPlat.Checkpoint = img
	if _, err := replay.Run(wrongPlat, o); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("restore onto hams-TE: err = %v, want ErrMismatch", err)
	}

	unsupported := replay.Scenario{
		Name:       "mm",
		Platform:   "mmap",
		Tenants:    []replay.Tenant{{Name: "a", Workload: "rndRd"}},
		Checkpoint: img,
	}
	if _, err := replay.Run(unsupported, replay.Options{Scale: 1e-7}); !errors.Is(err, checkpoint.ErrUnsupported) {
		t.Fatalf("restore onto mmap: err = %v, want ErrUnsupported", err)
	}

	negative := cpScenario(-1)
	if _, err := replay.Run(negative, o); err == nil {
		t.Fatal("Run accepted a negative warm-up")
	}
}
