// Package replay adapts recorded traces and synthetic Table III
// workloads into executable scenarios: it assembles per-tenant
// cpu.Streams, warms the platform with each tenant's steady-state
// regions, drives everything through one cpu.Runner on a shared
// memory system, and reports per-tenant progress and latency
// percentiles (p50/p95/p99 from stats.Histogram).
//
// Determinism contract: replaying a v2 trace recorded from a live
// workload run reproduces that run's simulated statistics bit-for-bit
// (pinned by this package's golden test and re-checked by every
// `hamsbench replay` cell), and a scenario's result is a pure function
// of (Scenario, Options) — never of host scheduling.
package replay

import (
	"fmt"
	"io"

	"hams/internal/cpu"
	"hams/internal/energy"
	"hams/internal/mem"
	"hams/internal/platform"
	"hams/internal/sim"
	"hams/internal/stats"
	"hams/internal/trace"
	"hams/internal/workload"
)

// Tenant is one co-located traffic source of a scenario: either a
// recorded trace (Trace non-nil) or a synthetic Table III workload
// generated on the fly.
type Tenant struct {
	// Name labels the tenant in per-tenant breakdowns and derives
	// nothing — two tenants may share a workload but not a name.
	Name string
	// Trace selects trace-backed streams. When TraceLabel is empty the
	// tenant replays every thread of the file; otherwise only threads
	// recorded under that label.
	Trace      *trace.File
	TraceLabel string
	// Workload names a Table III spec for synthetic tenants
	// (ignored when Trace is set).
	Workload string
	// Seed overrides the scenario-level stream seed for this tenant —
	// required when two synthetic tenants share a workload, or their
	// streams would be perfectly correlated.
	Seed int64
}

// Scenario composes N tenants onto one platform. Every tenant thread
// gets its own core; the memory system, MoS cache, and archive
// bandwidth are shared — the contention under test.
type Scenario struct {
	Name     string
	Platform string
	PlatOpts platform.Options
	Tenants  []Tenant
}

// Options tunes synthetic tenant stream generation (trace-backed
// tenants replay exactly what was recorded and ignore both fields).
type Options struct {
	// Scale multiplies Table III instruction counts; 0 keeps the
	// workload package default.
	Scale float64
	// Seed is the base stream seed (Tenant.Seed overrides per tenant).
	Seed int64
}

func (o Options) workloadOptions() workload.Options {
	w := workload.DefaultOptions()
	if o.Scale > 0 {
		w.Scale = o.Scale
	}
	w.Seed = o.Seed
	return w
}

// TenantStats is one tenant's share of a scenario run.
type TenantStats struct {
	Name     string
	Threads  int
	Units    int64 // completed work items (steps for traces = pages/ops)
	Accesses int64 // memory accesses issued past the core's own step
	// Latency percentiles over the tenant's end-to-end access
	// latencies (address translation + cache hierarchy + memory
	// system), in simulated time.
	Mean, P50, P95, P99, Max sim.Time
}

// Result is one scenario run.
type Result struct {
	Scenario string
	Platform string
	CPU      cpu.Stats
	Energy   energy.Breakdown
	Tenants  []TenantStats
	Units    int64
}

// UnitsPerSec returns aggregate work items per second of simulated time.
func (r Result) UnitsPerSec() float64 {
	secs := r.CPU.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Units) / secs
}

// RecordWorkload records a Table III workload into a v2 container:
// one tenant label (the workload name) per thread, plus the spec's
// warm regions — everything a later Run needs to reproduce the live
// run bit-for-bit. thread selects a single 0-based stream; pass
// AllThreads for the whole workload. It returns the number of steps
// recorded. All recorders (hamstrace, the replay bench target, tests)
// go through here so what travels with a trace is defined once.
func RecordWorkload(w io.Writer, wlName string, wo workload.Options, thread int) (int64, error) {
	spec, err := workload.ByName(wlName)
	if err != nil {
		return 0, err
	}
	streams := spec.Streams(wo)
	if thread != AllThreads {
		if thread < 0 || thread >= len(streams) {
			return 0, fmt.Errorf("replay: thread %d out of range [0, %d)", thread, len(streams))
		}
		streams = streams[thread : thread+1]
	}
	labels := make([]string, len(streams))
	for i := range labels {
		labels[i] = spec.Name
	}
	var warm []trace.Region
	for _, r := range spec.HotRegions(wo) {
		warm = append(warm, trace.Region{Base: r.Base, Size: r.Size})
	}
	return trace.RecordAll(w, spec.Name, labels, warm, streams)
}

// AllThreads selects every stream of a workload in RecordWorkload.
const AllThreads = -1

// FromFile converts a decoded trace into scenario tenants, one per
// distinct thread label, so a multi-tenant recording replays with its
// per-tenant breakdowns intact. Single-label files (and files mixing
// labeled and unlabeled threads, which cannot be split unambiguously)
// become one tenant covering every thread.
func FromFile(f *trace.File) []Tenant {
	labels := f.Labels()
	split := len(labels) > 1
	for _, l := range labels {
		if l == "" {
			split = false
		}
	}
	if !split {
		name := f.Name
		if name == "" {
			name = "trace"
		}
		return []Tenant{{Name: name, Trace: f}}
	}
	out := make([]Tenant, len(labels))
	for i, l := range labels {
		out[i] = Tenant{Name: l, Trace: f, TraceLabel: l}
	}
	return out
}

// streams materializes the tenant's streams and warm regions.
func (t Tenant) streams(o Options) ([]cpu.Stream, []trace.Region, error) {
	if t.Trace != nil {
		ss := t.Trace.StreamsFor(t.TraceLabel)
		if len(ss) == 0 {
			return nil, nil, fmt.Errorf("replay: tenant %q: no threads with label %q", t.Name, t.TraceLabel)
		}
		return ss, t.Trace.Warm, nil
	}
	spec, err := workload.ByName(t.Workload)
	if err != nil {
		return nil, nil, fmt.Errorf("replay: tenant %q: %w", t.Name, err)
	}
	wo := o.workloadOptions()
	if t.Seed != 0 {
		wo.Seed = t.Seed
	}
	var warm []trace.Region
	for _, r := range spec.HotRegions(wo) {
		warm = append(warm, trace.Region{Base: r.Base, Size: r.Size})
	}
	return spec.Streams(wo), warm, nil
}

// Run executes a scenario. Warm regions of every tenant are installed
// first (warming is untimed and idempotent), then all tenant threads
// run concurrently on one runner; per-access latencies are folded into
// per-tenant histograms via the runner's observer hook.
func Run(sc Scenario, o Options) (Result, error) {
	if len(sc.Tenants) == 0 {
		return Result{}, fmt.Errorf("replay: scenario %q has no tenants", sc.Name)
	}
	plat, err := platform.New(sc.Platform, sc.PlatOpts)
	if err != nil {
		return Result{}, fmt.Errorf("replay: scenario %q: %w", sc.Name, err)
	}
	res := Result{Scenario: sc.Name, Platform: sc.Platform, Tenants: make([]TenantStats, len(sc.Tenants))}
	var streams []cpu.Stream
	var coreTenant []int
	tenantStreams := make([][]cpu.Stream, len(sc.Tenants))
	for ti, t := range sc.Tenants {
		ss, warm, err := t.streams(o)
		if err != nil {
			return Result{}, err
		}
		for _, rgn := range warm {
			plat.Warm(rgn.Base, rgn.Size)
		}
		res.Tenants[ti].Name = t.Name
		res.Tenants[ti].Threads = len(ss)
		tenantStreams[ti] = ss
		for range ss {
			coreTenant = append(coreTenant, ti)
		}
		streams = append(streams, ss...)
	}

	ccfg := cpu.DefaultConfig()
	// Every tenant thread gets a core; scenarios below the default core
	// count keep it, so replaying a single recorded workload uses the
	// exact configuration its live run did.
	if len(streams) > ccfg.Cores {
		ccfg.Cores = len(streams)
	}
	if pg := platform.MappingPage(sc.Platform, sc.PlatOpts); pg != 0 {
		ccfg.TLB.PageBytes = pg
	}
	hists := make([]*stats.Histogram, len(sc.Tenants))
	for i := range hists {
		hists[i] = stats.NewHistogram()
	}
	runner := cpu.NewRunner(ccfg, plat)
	runner.Observe(func(core int, a mem.Access, issue, done sim.Time) {
		hists[coreTenant[core]].Add(done - issue)
	})
	st, err := runner.Run(streams)
	if err != nil {
		return Result{}, fmt.Errorf("replay: scenario %q on %s: %w", sc.Name, sc.Platform, err)
	}
	res.CPU = st
	for ti := range sc.Tenants {
		for _, s := range tenantStreams[ti] {
			if p, ok := s.(workload.Progress); ok {
				res.Tenants[ti].Units += p.Units()
			}
		}
		res.Units += res.Tenants[ti].Units
		h := hists[ti]
		res.Tenants[ti].Accesses = h.Count()
		res.Tenants[ti].Mean = h.Mean()
		res.Tenants[ti].P50 = h.Percentile(50)
		res.Tenants[ti].P95 = h.Percentile(95)
		res.Tenants[ti].P99 = h.Percentile(99)
		res.Tenants[ti].Max = h.Max()
	}
	in := plat.EnergyInputs()
	in.Elapsed = st.Elapsed
	in.Cores = ccfg.Cores
	in.CPUBusy = busyTime(ccfg, st)
	res.Energy = energy.Compute(energy.DefaultParams(), in)
	return res, nil
}

// busyTime mirrors the live harness's core-activity estimate (compute
// plus cache-access time; memory-system stalls count as idle) so a
// replayed run's energy matches its live run exactly.
func busyTime(cfg cpu.Config, st cpu.Stats) sim.Time {
	cache := sim.Time(st.L1Hits+st.L1Misses)*cfg.L1Lat +
		sim.Time(st.L2Hits+st.L2Misses)*cfg.L2Lat
	return st.ComputeTime + cache
}
