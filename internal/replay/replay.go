// Package replay adapts recorded traces and synthetic Table III
// workloads into executable scenarios: it assembles per-tenant
// cpu.Streams, warms the platform with each tenant's steady-state
// regions, drives everything through one cpu.Runner on a shared
// memory system, and reports per-tenant progress and latency
// percentiles (p50/p95/p99 from stats.Histogram).
//
// Determinism contract: replaying a v2 trace recorded from a live
// workload run reproduces that run's simulated statistics bit-for-bit
// (pinned by this package's golden test and re-checked by every
// `hamsbench replay` cell), and a scenario's result is a pure function
// of (Scenario, Options) — never of host scheduling.
package replay

import (
	"fmt"
	"io"

	"hams/internal/checkpoint"
	"hams/internal/core"
	"hams/internal/cpu"
	"hams/internal/energy"
	"hams/internal/mem"
	"hams/internal/platform"
	"hams/internal/qos"
	"hams/internal/sim"
	"hams/internal/stats"
	"hams/internal/trace"
	"hams/internal/workload"
)

// Tenant is one co-located traffic source of a scenario: either a
// recorded trace (Trace non-nil) or a synthetic Table III workload
// generated on the fly.
type Tenant struct {
	// Name labels the tenant in per-tenant breakdowns and derives
	// nothing — two tenants may share a workload but not a name.
	Name string
	// Trace selects trace-backed streams. When TraceLabel is empty the
	// tenant replays every thread of the file; otherwise only threads
	// recorded under that label.
	Trace      *trace.File
	TraceLabel string
	// Workload names a Table III spec for synthetic tenants
	// (ignored when Trace is set).
	Workload string
	// Seed overrides the scenario-level stream seed for this tenant —
	// required when two synthetic tenants share a workload, or their
	// streams would be perfectly correlated.
	Seed int64
	// Class names the tenant's class of service in Scenario.QoS (the
	// CLOS its accesses are tagged with). Empty = the default class 0.
	// Several tenants may share a class; monitoring counters are then
	// shared too, as on real RDT hardware.
	Class string
	// Base offsets every address the tenant issues (and its warm
	// regions) by this many bytes, giving co-located tenants disjoint
	// MoS footprints — without it, two tenants running the same
	// workload literally share pages, which models shared data, not
	// separate customers. 0 keeps the workload's own addresses.
	Base uint64
	// Scale overrides Options.Scale for this tenant (0 = inherit):
	// co-location studies need a heavyweight background tenant next to
	// a lightweight latency-sensitive one.
	Scale float64
	// Hot overrides the synthetic workload's hot-region size in bytes
	// (0 = the workload default) — the tenant's steady-state working
	// set, which isolation scenarios size against its cache partition.
	Hot uint64
	// HotFrac overrides the fraction of the workload's random traffic
	// that stays inside the hot region (0 = the workload default). A
	// latency-sensitive service with HotFrac 1 has a fully cacheable
	// working set: every miss it suffers is inflicted by a neighbor.
	HotFrac float64
	// Dataset overrides the workload's Table III footprint in bytes
	// (0 = the spec value). Checkpoint-centric scenarios pin it: the
	// touched footprint is the state an image must carry, and a 16 GiB
	// default span makes save/restore cost scale with the address
	// space instead of the working set.
	Dataset uint64
}

// Scenario composes N tenants onto one platform. Every tenant thread
// gets its own core; the memory system, MoS cache, and archive
// bandwidth are shared — the contention under test. A QoS table turns
// free-for-all sharing into policed sharing.
type Scenario struct {
	Name     string
	Platform string
	PlatOpts platform.Options
	Tenants  []Tenant
	// QoS is the scenario's CLOS table (way partitions + bandwidth
	// throttles, see internal/qos), installed into the platform's MoS
	// controller. nil runs unpartitioned; a table whose classes all
	// have full masks and no throttle reproduces the nil behavior
	// bit-for-bit (pinned by TestQoSFullMaskParity).
	QoS *qos.Table
	// Policy is a sim-time-scheduled timeline of runtime class
	// reprogrammings (requires QoS; class names resolve against it).
	// Changes latch deterministically at request arrivals, so a
	// scenario with a policy timeline still replays bit-for-bit.
	Policy []PolicyChange
	// SLO attaches the AIMD feedback controller (internal/qos): hold
	// the named victim class's rolling p99 at the target by adapting
	// the other classes' way masks and bandwidth caps at runtime.
	// Requires QoS; composes with Policy (scheduled changes and
	// controller actions apply through the same mutation path).
	SLO *qos.SLO
	// Warmup splits the run into two phases: each tenant thread's
	// first Warmup steps execute as a warm-up whose statistics are
	// discarded, then the platform is quiesced and the remaining steps
	// run as the measured phase on the same timeline. Reported stats
	// (CPU, units, histograms, energy) cover only the measured phase.
	// 0 keeps the single-phase behavior unchanged.
	Warmup int64
	// Checkpoint, when non-nil, replaces the warm-up phase with a
	// restore: the platform is rebuilt cold (no Warm installs), the
	// image is overlaid onto it, every stream is fast-forwarded past
	// the image's recorded warm-up, and the measured phase proceeds
	// exactly as if the warm-up had just run live. The scenario's
	// platform, geometry and tenants must match the ones the image was
	// saved from.
	Checkpoint *checkpoint.Image
	// Sample gates statistics collection of the measured phase to
	// SMARTS-style observed windows (simulation stays exact; only
	// histogram feeding is gated). The zero Sampler disables sampling.
	// Sampled percentiles land in Result.Sampled next to the full ones.
	Sample checkpoint.Sampler
}

// PolicyChange is one scheduled reprogramming of a scenario's class:
// at simulated time At, class Class's way mask becomes Mask (0 =
// full) and its bandwidth cap MBps (0 = unthrottled). The mask change
// takes effect at the next victim selection — resident pages in
// now-forbidden ways stay hittable, in-flight fills complete — and
// the throttle re-bases without forgiving accrued debt.
type PolicyChange struct {
	At    sim.Time
	Class string
	Mask  uint64
	MBps  float64
}

// Options tunes synthetic tenant stream generation (trace-backed
// tenants replay exactly what was recorded and ignore both fields).
type Options struct {
	// Scale multiplies Table III instruction counts; 0 keeps the
	// workload package default.
	Scale float64
	// Seed is the base stream seed (Tenant.Seed overrides per tenant).
	Seed int64
}

func (o Options) workloadOptions() workload.Options {
	w := workload.DefaultOptions()
	if o.Scale > 0 {
		w.Scale = o.Scale
	}
	w.Seed = o.Seed
	return w
}

// TenantStats is one tenant's share of a scenario run.
type TenantStats struct {
	Name     string
	Threads  int
	Units    int64 // completed work items (steps for traces = pages/ops)
	Accesses int64 // memory accesses issued past the core's own step
	// Latency percentiles over the tenant's end-to-end access
	// latencies (address translation + cache hierarchy + memory
	// system), in simulated time.
	Mean, P50, P95, P99, Max sim.Time
	// Class is the tenant's CLOS name and QoS its class's MBM-style
	// counter block (zero value when the scenario has no QoS table, or
	// the platform has no MoS controller to monitor). Tenants sharing
	// a class report the same shared block.
	Class string
	QoS   qos.ClassStats
}

// Result is one scenario run.
type Result struct {
	Scenario string
	Platform string
	CPU      cpu.Stats
	Energy   energy.Breakdown
	Tenants  []TenantStats
	Units    int64
	// QoS holds the per-class monitoring counters in CLOS order (nil
	// without a QoS table or on platforms without a MoS controller).
	QoS []qos.ClassStats
	// QoSReconfigs counts runtime class reprogrammings applied during
	// the run (timeline changes + feedback-controller actions).
	QoSReconfigs int64
	// QoSFinal is the class table as it stood at the end of the run
	// (masks keep the 0 = full convention); nil without dynamic QoS
	// exposure.
	QoSFinal []qos.Class
	// Sampled holds per-tenant latency percentiles measured only over
	// accesses issued inside the scenario sampler's observed windows
	// (nil unless Scenario.Sample is enabled). Comparing these against
	// Tenants pins the sampling error.
	Sampled []SampledTenant
}

// SampledTenant is one tenant's interval-sampled measurement.
type SampledTenant struct {
	Name                     string
	Accesses                 int64
	Mean, P50, P95, P99, Max sim.Time
}

// UnitsPerSec returns aggregate work items per second of simulated time.
func (r Result) UnitsPerSec() float64 {
	secs := r.CPU.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Units) / secs
}

// RecordWorkload records a Table III workload into a v2 container:
// one tenant label (the workload name) per thread, plus the spec's
// warm regions — everything a later Run needs to reproduce the live
// run bit-for-bit. thread selects a single 0-based stream; pass
// AllThreads for the whole workload. It returns the number of steps
// recorded. All recorders (hamstrace, the replay bench target, tests)
// go through here so what travels with a trace is defined once.
func RecordWorkload(w io.Writer, wlName string, wo workload.Options, thread int) (int64, error) {
	spec, err := workload.ByName(wlName)
	if err != nil {
		return 0, err
	}
	streams := spec.Streams(wo)
	if thread != AllThreads {
		if thread < 0 || thread >= len(streams) {
			return 0, fmt.Errorf("replay: thread %d out of range [0, %d)", thread, len(streams))
		}
		streams = streams[thread : thread+1]
	}
	labels := make([]string, len(streams))
	for i := range labels {
		labels[i] = spec.Name
	}
	var warm []trace.Region
	for _, r := range spec.HotRegions(wo) {
		warm = append(warm, trace.Region{Base: r.Base, Size: r.Size})
	}
	return trace.RecordAll(w, spec.Name, labels, warm, streams)
}

// AllThreads selects every stream of a workload in RecordWorkload.
const AllThreads = -1

// FromFile converts a decoded trace into scenario tenants, one per
// distinct thread label, so a multi-tenant recording replays with its
// per-tenant breakdowns intact. Single-label files (and files mixing
// labeled and unlabeled threads, which cannot be split unambiguously)
// become one tenant covering every thread.
func FromFile(f *trace.File) []Tenant {
	labels := f.Labels()
	split := len(labels) > 1
	for _, l := range labels {
		if l == "" {
			split = false
		}
	}
	if !split {
		name := f.Name
		if name == "" {
			name = "trace"
		}
		return []Tenant{{Name: name, Trace: f}}
	}
	out := make([]Tenant, len(labels))
	for i, l := range labels {
		out[i] = Tenant{Name: l, Trace: f, TraceLabel: l}
	}
	return out
}

// offsetStream shifts every address a stream issues by a fixed base,
// relocating a tenant's footprint inside the MoS space. Progress
// forwards to the inner stream.
type offsetStream struct {
	inner cpu.Stream
	base  uint64
}

func (s *offsetStream) Next() (cpu.Step, bool) {
	step, ok := s.inner.Next()
	if !ok || len(step.Acc) == 0 {
		return step, ok
	}
	acc := make([]mem.Access, len(step.Acc))
	for i, a := range step.Acc {
		a.Addr += s.base
		acc[i] = a
	}
	step.Acc = acc
	return step, ok
}

// Units forwards workload progress through the offset wrapper.
func (s *offsetStream) Units() int64 {
	if p, ok := s.inner.(workload.Progress); ok {
		return p.Units()
	}
	return 0
}

// streams materializes the tenant's streams and warm regions.
func (t Tenant) streams(o Options) ([]cpu.Stream, []trace.Region, error) {
	ss, warm, err := t.rawStreams(o)
	if err != nil {
		return nil, nil, err
	}
	if t.Base != 0 {
		shifted := make([]cpu.Stream, len(ss))
		for i, s := range ss {
			shifted[i] = &offsetStream{inner: s, base: t.Base}
		}
		ss = shifted
		moved := make([]trace.Region, len(warm))
		for i, r := range warm {
			moved[i] = trace.Region{Base: r.Base + t.Base, Size: r.Size}
		}
		warm = moved
	}
	return ss, warm, nil
}

func (t Tenant) rawStreams(o Options) ([]cpu.Stream, []trace.Region, error) {
	if t.Trace != nil {
		ss := t.Trace.StreamsFor(t.TraceLabel)
		if len(ss) == 0 {
			return nil, nil, fmt.Errorf("replay: tenant %q: no threads with label %q", t.Name, t.TraceLabel)
		}
		return ss, t.Trace.Warm, nil
	}
	spec, err := workload.ByName(t.Workload)
	if err != nil {
		return nil, nil, fmt.Errorf("replay: tenant %q: %w", t.Name, err)
	}
	wo := o.workloadOptions()
	if t.Seed != 0 {
		wo.Seed = t.Seed
	}
	if t.Scale > 0 {
		wo.Scale = t.Scale
	}
	if t.Hot != 0 {
		wo.HotBytes = t.Hot
	}
	if t.HotFrac > 0 {
		wo.HotFraction = t.HotFrac
	}
	if t.Dataset != 0 {
		wo.DatasetBytes = t.Dataset
	}
	var warm []trace.Region
	for _, r := range spec.HotRegions(wo) {
		warm = append(warm, trace.Region{Base: r.Base, Size: r.Size})
	}
	return spec.Streams(wo), warm, nil
}

// classWarmer is the optional platform capability of warming a range
// on behalf of a QoS class (the HAMS variants implement it).
type classWarmer interface {
	WarmClass(base, size uint64, cls qos.ClassID)
}

// qosExposer reaches the MoS controller for its monitoring counters.
type qosExposer interface{ Controller() *core.Controller }

// resolveClasses maps each tenant to its CLOS ID. Without a QoS table
// every tenant must be on the default class (a named class with no
// table is a configuration error, not a silent fallback).
func resolveClasses(sc Scenario) ([]qos.ClassID, error) {
	out := make([]qos.ClassID, len(sc.Tenants))
	for i, t := range sc.Tenants {
		if t.Class == "" {
			continue
		}
		if sc.QoS == nil {
			return nil, fmt.Errorf("replay: tenant %q names class %q but scenario %q has no QoS table",
				t.Name, t.Class, sc.Name)
		}
		id, ok := sc.QoS.ByName(t.Class)
		if !ok {
			return nil, fmt.Errorf("replay: tenant %q: unknown QoS class %q", t.Name, t.Class)
		}
		out[i] = id
	}
	return out, nil
}

// limitStream caps a stream at a fixed number of leading steps — the
// warm-up phase drives the real stream objects through it, so the
// measured phase continues them from exactly step N+1.
type limitStream struct {
	inner cpu.Stream
	left  int64
}

func (s *limitStream) Next() (cpu.Step, bool) {
	if s.left <= 0 {
		return cpu.Step{}, false
	}
	s.left--
	return s.inner.Next()
}

// Run executes a scenario. Warm regions of every tenant are installed
// first (warming is untimed and idempotent; with a QoS table each
// tenant warms inside its own way partition), then all tenant threads
// run concurrently on one runner; per-access latencies are folded into
// per-tenant histograms via the runner's observer hook. With Warmup or
// Checkpoint set, only the measured phase is reported.
func Run(sc Scenario, o Options) (Result, error) {
	res, _, err := run(sc, o, false)
	return res, err
}

// Warmup executes only the scenario's warm-up phase (Scenario.Warmup
// must be positive and Checkpoint unset) and captures the quiesced
// platform into a checkpoint image. N scenarios restored from the one
// image reproduce N live phase-split runs bit-for-bit while paying the
// warm-up cost once.
func Warmup(sc Scenario, o Options) (*checkpoint.Image, error) {
	if sc.Warmup <= 0 {
		return nil, fmt.Errorf("replay: scenario %q: Warmup requires a positive warm-up length", sc.Name)
	}
	if sc.Checkpoint != nil {
		return nil, fmt.Errorf("replay: scenario %q: cannot warm up from a checkpoint", sc.Name)
	}
	_, img, err := run(sc, o, true)
	return img, err
}

func run(sc Scenario, o Options, saveOnly bool) (Result, *checkpoint.Image, error) {
	if len(sc.Tenants) == 0 {
		return Result{}, nil, fmt.Errorf("replay: scenario %q has no tenants", sc.Name)
	}
	// Tenant names key per-tenant seeds, latency buckets and report
	// columns: a duplicate would silently merge two tenants into one
	// stats bucket, so reject it up front.
	names := make(map[string]bool, len(sc.Tenants))
	for _, t := range sc.Tenants {
		if names[t.Name] {
			return Result{}, nil, fmt.Errorf("replay: scenario %q has two tenants named %q", sc.Name, t.Name)
		}
		names[t.Name] = true
	}
	warmupSteps := sc.Warmup
	if warmupSteps < 0 {
		return Result{}, nil, fmt.Errorf("replay: scenario %q: negative warm-up %d", sc.Name, warmupSteps)
	}
	if sc.Checkpoint != nil {
		// The image records how much warm-up produced it; the scenario
		// may restate the same figure but must not contradict it.
		if warmupSteps != 0 && warmupSteps != sc.Checkpoint.Warmup {
			return Result{}, nil, fmt.Errorf("replay: scenario %q sets warm-up %d but its checkpoint recorded %d",
				sc.Name, warmupSteps, sc.Checkpoint.Warmup)
		}
		warmupSteps = sc.Checkpoint.Warmup
	}
	if sc.Sample.Measure < 0 || sc.Sample.Skip < 0 {
		return Result{}, nil, fmt.Errorf("replay: scenario %q: negative sampling window", sc.Name)
	}
	classes, err := resolveClasses(sc)
	if err != nil {
		return Result{}, nil, err
	}
	popt := sc.PlatOpts
	if sc.QoS != nil {
		popt.HAMSQoS = sc.QoS
	}
	ways := sc.PlatOpts.HAMSWays
	if ways <= 0 {
		ways = 1
	}
	if len(sc.Policy) > 0 {
		if sc.QoS == nil {
			return Result{}, nil, fmt.Errorf("replay: scenario %q schedules policy changes but has no QoS table", sc.Name)
		}
		timeline := make([]qos.TimedChange, len(sc.Policy))
		for i, ch := range sc.Policy {
			id, ok := sc.QoS.ByName(ch.Class)
			if !ok {
				return Result{}, nil, fmt.Errorf("replay: scenario %q: policy change %d: unknown QoS class %q", sc.Name, i, ch.Class)
			}
			timeline[i] = qos.TimedChange{At: ch.At, Class: id, Mask: ch.Mask, MBps: ch.MBps}
		}
		if err := qos.ValidateSchedule(timeline, sc.QoS.Len(), ways); err != nil {
			return Result{}, nil, fmt.Errorf("replay: scenario %q: %w", sc.Name, err)
		}
		popt.HAMSQoSPolicy = timeline
	}
	var ctl *qos.Controller
	if sc.SLO != nil {
		if sc.QoS == nil {
			return Result{}, nil, fmt.Errorf("replay: scenario %q sets an SLO but has no QoS table", sc.Name)
		}
		ctl, err = qos.NewController(*sc.SLO, sc.QoS, ways)
		if err != nil {
			return Result{}, nil, fmt.Errorf("replay: scenario %q: %w", sc.Name, err)
		}
		popt.HAMSQoSController = ctl
	}
	plat, err := platform.New(sc.Platform, popt)
	if err != nil {
		return Result{}, nil, fmt.Errorf("replay: scenario %q: %w", sc.Name, err)
	}
	cw, _ := plat.(classWarmer)
	res := Result{Scenario: sc.Name, Platform: sc.Platform, Tenants: make([]TenantStats, len(sc.Tenants))}
	var streams []cpu.Stream
	var coreTenant []int
	var coreClass []uint8
	tenantStreams := make([][]cpu.Stream, len(sc.Tenants))
	for ti, t := range sc.Tenants {
		ss, warm, err := t.streams(o)
		if err != nil {
			return Result{}, nil, err
		}
		// A restored platform already holds the warmed state the live
		// run installed before its warm-up phase; re-warming would
		// perturb the image's replacement-policy state.
		if sc.Checkpoint == nil {
			for _, rgn := range warm {
				if sc.QoS != nil && cw != nil {
					cw.WarmClass(rgn.Base, rgn.Size, classes[ti])
				} else {
					plat.Warm(rgn.Base, rgn.Size)
				}
			}
		}
		res.Tenants[ti].Name = t.Name
		res.Tenants[ti].Class = t.Class
		res.Tenants[ti].Threads = len(ss)
		tenantStreams[ti] = ss
		for range ss {
			coreTenant = append(coreTenant, ti)
			coreClass = append(coreClass, classes[ti])
		}
		streams = append(streams, ss...)
	}

	ccfg := cpu.DefaultConfig()
	// Every tenant thread gets a core; scenarios below the default core
	// count keep it, so replaying a single recorded workload uses the
	// exact configuration its live run did.
	if len(streams) > ccfg.Cores {
		ccfg.Cores = len(streams)
	}
	if pg := platform.MappingPage(sc.Platform, sc.PlatOpts); pg != 0 {
		ccfg.TLB.PageBytes = pg
	}

	// Phase boundary: t0 is the simulated instant the measured phase
	// begins — 0 for a single-phase run, the quiesced warm-up horizon
	// otherwise. Both the live and the restored path land on the same
	// t0 with the same platform and stream state (the determinism the
	// fan-out tests pin).
	var t0 sim.Time
	if sc.Checkpoint != nil {
		if err := platform.Restore(plat, sc.Checkpoint); err != nil {
			return Result{}, nil, fmt.Errorf("replay: scenario %q: %w", sc.Name, err)
		}
		// Fast-forward every stream past the warm-up the image already
		// executed: the generators land in the exact state the live
		// warm-up left them in.
		for _, s := range streams {
			for i := int64(0); i < warmupSteps; i++ {
				if _, ok := s.Next(); !ok {
					break
				}
			}
		}
		t0 = sim.Time(sc.Checkpoint.SimTime)
	} else if warmupSteps > 0 {
		wrunner := cpu.NewRunner(ccfg, plat)
		if sc.QoS != nil {
			wrunner.SetClasses(coreClass)
		}
		// The warm-up phase feeds only the SLO controller (its state at
		// the boundary is part of the platform state a checkpoint
		// carries); histograms see measured accesses only.
		if ctl != nil {
			wrunner.Observe(func(core int, a mem.Access, issue, done sim.Time) {
				ctl.Observe(coreClass[core], done-issue)
			})
		}
		limited := make([]cpu.Stream, len(streams))
		for i, s := range streams {
			limited[i] = &limitStream{inner: s, left: warmupSteps}
		}
		wst, err := wrunner.Run(limited)
		if err != nil {
			return Result{}, nil, fmt.Errorf("replay: scenario %q warm-up on %s: %w", sc.Name, sc.Platform, err)
		}
		t0 = wst.Elapsed
		if qe, ok := plat.(qosExposer); ok {
			mos := qe.Controller()
			if err := mos.Quiesce(); err != nil {
				return Result{}, nil, fmt.Errorf("replay: scenario %q warm-up: %w", sc.Name, err)
			}
			// The platform clock and the slowest core's horizon meet at
			// t0, so a saved image and the continuing live run agree on
			// when the measured phase starts.
			if now := mos.Now(); now > t0 {
				t0 = now
			}
			mos.AdvanceTo(t0)
		}
	}
	if saveOnly {
		img, err := platform.Save(plat, warmupSteps)
		if err != nil {
			return Result{}, nil, fmt.Errorf("replay: scenario %q: %w", sc.Name, err)
		}
		return Result{}, img, nil
	}

	// The warm-up's work counts are not the measured phase's: capture
	// the boundary and subtract. The restored path recomputes the same
	// boundary from its fast-forwarded generators.
	warmUnits := make([]int64, len(sc.Tenants))
	for ti := range sc.Tenants {
		for _, s := range tenantStreams[ti] {
			if p, ok := s.(workload.Progress); ok {
				warmUnits[ti] += p.Units()
			}
		}
	}

	hists := make([]*stats.Histogram, len(sc.Tenants))
	for i := range hists {
		hists[i] = stats.NewHistogram()
	}
	var shists []*stats.Histogram
	if sc.Sample.Enabled() {
		shists = make([]*stats.Histogram, len(sc.Tenants))
		for i := range shists {
			shists[i] = stats.NewHistogram()
		}
	}
	runner := cpu.NewRunner(ccfg, plat)
	runner.SetStart(t0)
	if sc.QoS != nil {
		runner.SetClasses(coreClass)
	}
	runner.Observe(func(core int, a mem.Access, issue, done sim.Time) {
		hists[coreTenant[core]].Add(done - issue)
		if shists != nil && sc.Sample.Sampled(int64(issue-t0)) {
			shists[coreTenant[core]].Add(done - issue)
		}
		// The SLO controller samples the same single-threaded
		// completion stream the histograms do, so its rolling p99 —
		// and therefore its reprogramming trajectory — is a pure
		// function of simulated time (replay ≡ live).
		if ctl != nil {
			ctl.Observe(coreClass[core], done-issue)
		}
	})
	st, err := runner.Run(streams)
	if err != nil {
		return Result{}, nil, fmt.Errorf("replay: scenario %q on %s: %w", sc.Name, sc.Platform, err)
	}
	res.CPU = st
	if sc.QoS != nil {
		if qe, ok := plat.(qosExposer); ok {
			res.QoS = qe.Controller().QoSStats()
			res.QoSReconfigs = qe.Controller().QoSReconfigs()
			res.QoSFinal = qe.Controller().QoSCurrent()
		}
	}
	for ti := range sc.Tenants {
		for _, s := range tenantStreams[ti] {
			if p, ok := s.(workload.Progress); ok {
				res.Tenants[ti].Units += p.Units()
			}
		}
		res.Tenants[ti].Units -= warmUnits[ti]
		res.Units += res.Tenants[ti].Units
		h := hists[ti]
		res.Tenants[ti].Accesses = h.Count()
		res.Tenants[ti].Mean = h.Mean()
		res.Tenants[ti].P50 = h.Percentile(50)
		res.Tenants[ti].P95 = h.Percentile(95)
		res.Tenants[ti].P99 = h.Percentile(99)
		res.Tenants[ti].Max = h.Max()
		if int(classes[ti]) < len(res.QoS) {
			res.Tenants[ti].QoS = res.QoS[classes[ti]]
		}
	}
	if shists != nil {
		res.Sampled = make([]SampledTenant, len(sc.Tenants))
		for ti, h := range shists {
			res.Sampled[ti] = SampledTenant{
				Name:     sc.Tenants[ti].Name,
				Accesses: h.Count(),
				Mean:     h.Mean(),
				P50:      h.Percentile(50),
				P95:      h.Percentile(95),
				P99:      h.Percentile(99),
				Max:      h.Max(),
			}
		}
	}
	in := plat.EnergyInputs()
	in.Elapsed = st.Elapsed
	in.Cores = ccfg.Cores
	in.CPUBusy = busyTime(ccfg, st)
	res.Energy = energy.Compute(energy.DefaultParams(), in)
	return res, nil, nil
}

// busyTime mirrors the live harness's core-activity estimate (compute
// plus cache-access time; memory-system stalls count as idle) so a
// replayed run's energy matches its live run exactly.
func busyTime(cfg cpu.Config, st cpu.Stats) sim.Time {
	cache := sim.Time(st.L1Hits+st.L1Misses)*cfg.L1Lat +
		sim.Time(st.L2Hits+st.L2Misses)*cfg.L2Lat
	return st.ComputeTime + cache
}
