package replay_test

// External test package: it drives replay through the same
// internal/experiments entry points the harness uses, which would be
// an import cycle from package replay itself.

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hams/internal/cpu"
	"hams/internal/experiments"
	"hams/internal/platform"
	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/trace"
	"hams/internal/workload"
)

// recordFile round-trips a workload's streams through the v2 codec.
func recordFile(t *testing.T, wlName string, wo workload.Options) *trace.File {
	t.Helper()
	var buf bytes.Buffer
	if _, err := replay.RecordWorkload(&buf, wlName, wo, replay.AllThreads); err != nil {
		t.Fatal(err)
	}
	f, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRecordReplayGolden is the determinism guarantee the replay
// subsystem is pinned by: replaying a recorded trace reproduces the
// live run's simulated statistics bit-for-bit — the full cpu.Stats
// struct, the work-unit count, the energy total, and the rendered
// stats text. One workload per generator family, on a HAMS platform
// and the mmap software baseline.
func TestRecordReplayGolden(t *testing.T) {
	render := func(st cpu.Stats, units int64, energy float64) string {
		return fmt.Sprintf("%+v|units=%d|energy=%.9f", st, units, energy)
	}
	cases := []struct{ platform, workload string }{
		{"hams-LE", "rndRd"},  // micro, 4 threads
		{"hams-LE", "rndIns"}, // SQLite, 1 thread
		{"hams-LE", "KMN"},    // Rodinia, 4 threads
		{"mmap", "seqWr"},     // software baseline
	}
	for _, tc := range cases {
		t.Run(tc.workload+"@"+tc.platform, func(t *testing.T) {
			o := experiments.Options{Scale: 1e-7, Seed: 7}
			live, err := experiments.Run(tc.platform, tc.workload, o, platform.Options{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			wo := workload.DefaultOptions()
			wo.Scale = 1e-7
			wo.Seed = 7
			f := recordFile(t, tc.workload, wo)
			rep, err := replay.Run(replay.Scenario{
				Name:     tc.workload,
				Platform: tc.platform,
				Tenants:  []replay.Tenant{{Name: tc.workload, Trace: f}},
			}, replay.Options{})
			if err != nil {
				t.Fatal(err)
			}
			liveGold := render(live.CPU, live.Units, live.Energy.Total())
			repGold := render(rep.CPU, rep.Units, rep.Energy.Total())
			if liveGold != repGold {
				t.Fatalf("replay diverged from live run:\nlive   %s\nreplay %s", liveGold, repGold)
			}
		})
	}
}

// TestRecordReplayGoldenMSHR extends the determinism guarantee to
// the non-blocking miss pipeline: a trace recorded once replays
// bit-for-bit against an MSHR-enabled platform too, and the
// non-blocking run differs from the blocking one (the knob reached
// the controller).
func TestRecordReplayGoldenMSHR(t *testing.T) {
	// A small cache under a compact, low-locality dataset keeps the
	// run in the dirty-eviction regime, where the two pipelines
	// schedule differently.
	o := experiments.Options{Scale: 2e-6, Seed: 42}
	popt := platform.Options{HAMSMSHRs: 4, HAMSNVDIMM: 32 * 1024 * 1024, HAMSPRPSlots: 32}
	wo := workload.DefaultOptions()
	wo.Scale = 2e-6
	wo.Seed = 42
	wo.HotFraction = 0.05
	wo.HotBytes = 16 * 1024 * 1024
	wo.DatasetBytes = 256 * 1024 * 1024
	live, err := experiments.Run("hams-LE", "rndWr", o, popt, &wo)
	if err != nil {
		t.Fatal(err)
	}
	f := recordFile(t, "rndWr", wo)
	sc := replay.Scenario{
		Name:     "rndWr-mshr4",
		Platform: "hams-LE",
		PlatOpts: popt,
		Tenants:  []replay.Tenant{{Name: "rndWr", Trace: f}},
	}
	rep, err := replay.Run(sc, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if live.CPU != rep.CPU || live.Units != rep.Units {
		t.Fatalf("MSHR replay diverged from live run:\nlive   %+v\nreplay %+v", live.CPU, rep.CPU)
	}
	bopt := popt
	bopt.HAMSMSHRs = 0
	blocking, err := experiments.Run("hams-LE", "rndWr", o, bopt, &wo)
	if err != nil {
		t.Fatal(err)
	}
	if blocking.CPU == live.CPU {
		t.Fatal("MSHRs=4 and the blocking pipeline produced identical stats — the knob did not reach the controller")
	}
}

// TestQoSFullMaskParityMSHR: the QoS-transparency pin holds under the
// non-blocking pipeline — full-mask, unthrottled classes on an
// MSHRs=4 platform are bit-for-bit the same scenario without a QoS
// table. MSHR occupancy respects CAT masks through the same victim
// path, so a full mask must not perturb it; MBA debt still lands on
// the requesting class only (zero here, so timings match exactly).
func TestQoSFullMaskParityMSHR(t *testing.T) {
	popt := platform.Options{HAMSMSHRs: 4, HAMSNVDIMM: 64 * 1024 * 1024}
	base := replay.Scenario{
		Name:     "parity-mshr",
		Platform: "hams-LE",
		PlatOpts: popt,
		Tenants: []replay.Tenant{
			{Name: "reader", Workload: "rndRd", Seed: 11},
			{Name: "writer", Workload: "rndWr", Seed: 22},
		},
	}
	o := replay.Options{Scale: 1e-7, Seed: 3}
	plain, err := replay.Run(base, o)
	if err != nil {
		t.Fatal(err)
	}
	qosed := base
	qosed.QoS = &qos.Table{Classes: []qos.Class{{Name: "rd"}, {Name: "wr"}}}
	qosed.Tenants = []replay.Tenant{
		{Name: "reader", Workload: "rndRd", Seed: 11, Class: "rd"},
		{Name: "writer", Workload: "rndWr", Seed: 22, Class: "wr"},
	}
	full, err := replay.Run(qosed, o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.CPU != full.CPU {
		t.Fatalf("cpu stats diverged under MSHRs:\nplain %+v\nqos   %+v", plain.CPU, full.CPU)
	}
	for i := range plain.Tenants {
		p, q := plain.Tenants[i], full.Tenants[i]
		if p.Mean != q.Mean || p.P99 != q.P99 || p.Max != q.Max {
			t.Fatalf("tenant %s stats diverged under MSHRs:\nplain %+v\nqos   %+v", p.Name, p, q)
		}
	}
}

// TestScenarioDeterministic: a scenario's result is a pure function of
// (Scenario, Options) — two runs are deeply equal.
func TestScenarioDeterministic(t *testing.T) {
	sc := replay.Scenario{
		Name:     "det",
		Platform: "hams-LE",
		Tenants: []replay.Tenant{
			{Name: "reader", Workload: "rndRd", Seed: 11},
			{Name: "oltp", Workload: "update", Seed: 22},
		},
	}
	o := replay.Options{Scale: 1e-7, Seed: 3}
	a, err := replay.Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := replay.Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scenario not deterministic:\na %+v\nb %+v", a, b)
	}
}

// TestMultiTenantStats: tenants progress concurrently, and the
// latency percentiles are populated and ordered.
func TestMultiTenantStats(t *testing.T) {
	sc := replay.Scenario{
		Name:     "mix",
		Platform: "hams-LE",
		Tenants: []replay.Tenant{
			{Name: "reader", Workload: "rndRd", Seed: 1},
			{Name: "writer", Workload: "seqWr", Seed: 2},
		},
	}
	res, err := replay.Run(sc, replay.Options{Scale: 1e-7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	var units int64
	for _, ten := range res.Tenants {
		units += ten.Units
		if ten.Units == 0 {
			t.Errorf("tenant %s made no progress", ten.Name)
		}
		if ten.Accesses == 0 {
			t.Errorf("tenant %s has no latency samples", ten.Name)
		}
		if ten.P50 > ten.P95 || ten.P95 > ten.P99 || ten.P99 > ten.Max {
			t.Errorf("tenant %s percentiles unordered: p50=%d p95=%d p99=%d max=%d",
				ten.Name, ten.P50, ten.P95, ten.P99, ten.Max)
		}
	}
	if units != res.Units {
		t.Fatalf("tenant units %d != total %d", units, res.Units)
	}
	if res.CPU.Elapsed <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

// TestTraceAndSyntheticMix: a trace-backed tenant co-runs with a
// synthetic one.
func TestTraceAndSyntheticMix(t *testing.T) {
	wo := workload.DefaultOptions()
	wo.Scale = 1e-7
	wo.Seed = 9
	f := recordFile(t, "rndIns", wo)
	res, err := replay.Run(replay.Scenario{
		Name:     "hybrid",
		Platform: "hams-LE",
		Tenants: []replay.Tenant{
			{Name: "recorded", Trace: f},
			{Name: "synthetic", Workload: "BFS", Seed: 13},
		},
	}, replay.Options{Scale: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants[0].Units == 0 || res.Tenants[1].Units == 0 {
		t.Fatalf("a tenant made no progress: %+v", res.Tenants)
	}
}

// TestFromFile: label grouping into tenants.
func TestFromFile(t *testing.T) {
	multi := &trace.File{
		Version: trace.Version2,
		Name:    "two-tenants",
		Threads: []trace.Thread{
			{Label: "a", Steps: []cpu.Step{{Compute: 1}}},
			{Label: "b", Steps: []cpu.Step{{Compute: 2}}},
			{Label: "a", Steps: []cpu.Step{{Compute: 3}}},
		},
	}
	tens := replay.FromFile(multi)
	if len(tens) != 2 || tens[0].Name != "a" || tens[1].Name != "b" {
		t.Fatalf("FromFile = %+v", tens)
	}
	single := &trace.File{Version: trace.Version1, Threads: []trace.Thread{{}}}
	tens = replay.FromFile(single)
	if len(tens) != 1 || tens[0].Name != "trace" || tens[0].TraceLabel != "" {
		t.Fatalf("FromFile(v1) = %+v", tens)
	}
	// Mixed labeled/unlabeled threads cannot be split unambiguously.
	mixed := &trace.File{Version: trace.Version2, Name: "m", Threads: []trace.Thread{
		{Label: "a"}, {Label: ""},
	}}
	tens = replay.FromFile(mixed)
	if len(tens) != 1 || tens[0].TraceLabel != "" {
		t.Fatalf("FromFile(mixed labels) = %+v", tens)
	}
}

// TestRunErrors: empty scenarios, unknown platforms/workloads, and
// label misses fail loudly instead of simulating nothing.
func TestRunErrors(t *testing.T) {
	if _, err := replay.Run(replay.Scenario{Name: "empty", Platform: "hams-LE"}, replay.Options{}); err == nil {
		t.Fatal("empty scenario accepted")
	}
	bad := replay.Scenario{Name: "p", Platform: "no-such", Tenants: []replay.Tenant{{Name: "x", Workload: "rndRd"}}}
	if _, err := replay.Run(bad, replay.Options{}); err == nil {
		t.Fatal("unknown platform accepted")
	}
	bad = replay.Scenario{Name: "w", Platform: "hams-LE", Tenants: []replay.Tenant{{Name: "x", Workload: "no-such"}}}
	if _, err := replay.Run(bad, replay.Options{Scale: 1e-8}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	f := &trace.File{Version: trace.Version2, Threads: []trace.Thread{{Label: "a"}}}
	bad = replay.Scenario{Name: "l", Platform: "hams-LE", Tenants: []replay.Tenant{{Name: "x", Trace: f, TraceLabel: "zzz"}}}
	if _, err := replay.Run(bad, replay.Options{}); err == nil {
		t.Fatal("label miss accepted")
	}
}

// TestDuplicateTenantNamesRejected: two tenants with the same label
// would silently merge into one TenantStats bucket (and share a
// derived seed); the scenario must be rejected before any simulation.
func TestDuplicateTenantNamesRejected(t *testing.T) {
	sc := replay.Scenario{
		Name:     "dup",
		Platform: "hams-LE",
		Tenants: []replay.Tenant{
			{Name: "twin", Workload: "rndRd", Seed: 1},
			{Name: "twin", Workload: "seqWr", Seed: 2},
		},
	}
	_, err := replay.Run(sc, replay.Options{Scale: 1e-8})
	if err == nil {
		t.Fatal("duplicate tenant names accepted")
	}
	if !strings.Contains(err.Error(), "twin") {
		t.Fatalf("error does not name the duplicate: %v", err)
	}
}

// TestQoSClassResolutionErrors: naming a class without a table, or an
// unknown class, fails up front.
func TestQoSClassResolutionErrors(t *testing.T) {
	sc := replay.Scenario{
		Name:     "noclos",
		Platform: "hams-LE",
		Tenants:  []replay.Tenant{{Name: "a", Workload: "rndRd", Class: "latency"}},
	}
	if _, err := replay.Run(sc, replay.Options{Scale: 1e-8}); err == nil {
		t.Fatal("class without QoS table accepted")
	}
	sc.QoS = &qos.Table{Classes: []qos.Class{{Name: "default"}}}
	if _, err := replay.Run(sc, replay.Options{Scale: 1e-8}); err == nil {
		t.Fatal("unknown class name accepted")
	}
}

// TestQoSFullMaskParity is the QoS subsystem's parity pin: a scenario
// where every tenant rides a full-way-mask, unthrottled CLOS must
// reproduce the same scenario without any QoS table bit-for-bit —
// same cpu.Stats, units, energy, and per-tenant latency percentiles.
// The QoS layer may observe (occupancy and bandwidth counters are
// live) but must not perturb.
func TestQoSFullMaskParity(t *testing.T) {
	base := replay.Scenario{
		Name:     "parity",
		Platform: "hams-LE",
		Tenants: []replay.Tenant{
			{Name: "reader", Workload: "rndRd", Seed: 11},
			{Name: "writer", Workload: "seqWr", Seed: 22},
		},
	}
	o := replay.Options{Scale: 1e-7, Seed: 3}
	plain, err := replay.Run(base, o)
	if err != nil {
		t.Fatal(err)
	}

	qosed := base
	qosed.QoS = &qos.Table{Classes: []qos.Class{
		{Name: "rd"}, // zero mask = full, no throttle
		{Name: "wr"},
	}}
	qosed.Tenants = []replay.Tenant{
		{Name: "reader", Workload: "rndRd", Seed: 11, Class: "rd"},
		{Name: "writer", Workload: "seqWr", Seed: 22, Class: "wr"},
	}
	full, err := replay.Run(qosed, o)
	if err != nil {
		t.Fatal(err)
	}

	if plain.CPU != full.CPU {
		t.Fatalf("cpu stats diverged:\nplain %+v\nqos   %+v", plain.CPU, full.CPU)
	}
	if plain.Units != full.Units || plain.Energy.Total() != full.Energy.Total() {
		t.Fatalf("units/energy diverged: %d/%g vs %d/%g",
			plain.Units, plain.Energy.Total(), full.Units, full.Energy.Total())
	}
	for i := range plain.Tenants {
		p, q := plain.Tenants[i], full.Tenants[i]
		if p.Accesses != q.Accesses || p.Mean != q.Mean || p.P50 != q.P50 ||
			p.P95 != q.P95 || p.P99 != q.P99 || p.Max != q.Max || p.Units != q.Units {
			t.Fatalf("tenant %s latency stats diverged:\nplain %+v\nqos   %+v", p.Name, p, q)
		}
	}
	// And the monitor actually watched: both classes saw traffic and
	// occupancy landed somewhere.
	if len(full.QoS) != 2 {
		t.Fatalf("QoS stats = %+v", full.QoS)
	}
	for _, cs := range full.QoS {
		if cs.Accesses == 0 {
			t.Fatalf("class %s observed no traffic: %+v", cs.Name, cs)
		}
	}
	if full.Tenants[0].QoS.Name != "rd" || full.Tenants[1].QoS.Name != "wr" {
		t.Fatalf("tenant QoS blocks misattributed: %+v / %+v", full.Tenants[0].QoS, full.Tenants[1].QoS)
	}
}
