package replay_test

// Dynamic-QoS determinism pins: a scenario carrying a policy timeline
// or an SLO feedback controller replays bit-for-bit — trace-backed
// tenants reproduce the synthetic run's controller trajectory and
// therefore its statistics exactly, because every controller input is
// a pure function of simulated time.

import (
	"reflect"
	"strings"
	"testing"

	"hams/internal/mem"
	"hams/internal/platform"
	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/sim"
	"hams/internal/workload"
)

// dynScenario is the two-tenant victim/aggressor co-location every
// dynamic-QoS test runs: synthetic when traced is false, trace-backed
// (recorded through the v2 codec at the same scale/seeds) when true.
func dynScenario(t *testing.T, traced bool) replay.Scenario {
	t.Helper()
	sc := replay.Scenario{
		Name:     "dynamic",
		Platform: "hams-LE",
		PlatOpts: platform.Options{HAMSWays: 4},
		QoS: &qos.Table{Classes: []qos.Class{
			{Name: "svc"},
			{Name: "bulk"},
		}},
		Tenants: []replay.Tenant{
			{Name: "svc", Workload: "rndRd", Seed: 11, Class: "svc"},
			{Name: "bulk", Workload: "seqWr", Seed: 22, Class: "bulk"},
		},
	}
	if !traced {
		return sc
	}
	for i, ten := range sc.Tenants {
		wo := workload.DefaultOptions()
		wo.Scale = 1e-7
		wo.Seed = ten.Seed
		sc.Tenants[i] = replay.Tenant{
			Name:  ten.Name,
			Trace: recordFile(t, ten.Workload, wo),
			Class: ten.Class,
		}
	}
	return sc
}

// TestPolicyChangeReplayGolden: a scheduled CLOS timeline latches at
// the same simulated instants live and replayed — the full Result
// (stats, per-tenant percentiles, reconfig count, final table) is
// bit-for-bit identical.
func TestPolicyChangeReplayGolden(t *testing.T) {
	policy := []replay.PolicyChange{
		{At: 50 * sim.Microsecond, Class: "bulk", Mask: 0x1, MBps: 100},
		{At: 200 * sim.Microsecond, Class: "bulk", Mask: 0, MBps: 400},
	}
	o := replay.Options{Scale: 1e-7}

	live := dynScenario(t, false)
	live.Policy = policy
	a, err := replay.Run(live, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.QoSReconfigs != int64(len(policy)) {
		t.Fatalf("QoSReconfigs = %d, want both timeline entries latched", a.QoSReconfigs)
	}
	cur := a.QoSFinal
	if len(cur) != 2 || cur[1].WayMask != 0 || cur[1].MBps != 400 {
		t.Fatalf("final table = %+v, want bulk at full mask / 400 MB/s", cur)
	}

	rep := dynScenario(t, true)
	rep.Policy = policy
	b, err := replay.Run(rep, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed policy run diverged from live:\nlive   %+v\nreplay %+v", a, b)
	}
}

// sloScenario is the contention-heavy co-location the SLO tests run:
// a cache-partitioned BFS service whose tail is inflicted by a
// streamer sweeping the whole array, so the controller sees sustained
// violations to act on (the dynScenario pair goes all-hits after
// warmup and the rolling window never trips). Tenant scales are
// pinned per tenant, like the qos experiment scenario.
func sloScenario(t *testing.T, traced bool) replay.Scenario {
	t.Helper()
	sc := replay.Scenario{
		Name:     "slo",
		Platform: "hams-LE",
		PlatOpts: platform.Options{HAMSWays: 8, HAMSNVDIMM: 64 * mem.MiB},
		QoS: &qos.Table{Classes: []qos.Class{
			{Name: "svc", WayMask: 0xfe},
			{Name: "bulk", WayMask: 0x01},
		}},
		Tenants: []replay.Tenant{
			{Name: "svc", Workload: "BFS", Seed: 11, Class: "svc",
				Scale: 5e-6, Hot: 4 * mem.MiB, HotFrac: 1.0},
			{Name: "bulk", Workload: "seqWr", Seed: 22, Class: "bulk",
				Scale: 5e-5, Base: 64 * mem.GiB},
		},
		SLO: &qos.SLO{Class: "svc", TargetP99: 3 * sim.Microsecond,
			Window: 128, MinMBps: 10, Hold: 2},
	}
	if !traced {
		return sc
	}
	for i, ten := range sc.Tenants {
		wo := workload.DefaultOptions()
		wo.Scale = ten.Scale
		wo.Seed = ten.Seed
		if ten.Hot != 0 {
			wo.HotBytes = ten.Hot
		}
		if ten.HotFrac > 0 {
			wo.HotFraction = ten.HotFrac
		}
		sc.Tenants[i] = replay.Tenant{
			Name:  ten.Name,
			Trace: recordFile(t, ten.Workload, wo),
			Class: ten.Class,
			Base:  ten.Base,
		}
	}
	return sc
}

// TestSLOControllerReplayGolden: the AIMD feedback controller's
// trajectory is reproduced bit-for-bit by a trace-backed replay, and a
// second live run of the same scenario is equally identical (a fresh
// controller is built per Run — no state leaks across runs).
func TestSLOControllerReplayGolden(t *testing.T) {
	o := replay.Options{}

	live := sloScenario(t, false)
	a, err := replay.Run(live, o)
	if err != nil {
		t.Fatal(err)
	}
	// The streamer keeps the victim's tail above target, so the
	// controller must have clamped it at least once.
	if a.QoSReconfigs == 0 {
		t.Fatal("controller never acted against sustained contention")
	}
	if len(a.QoSFinal) != 2 {
		t.Fatalf("final table = %+v", a.QoSFinal)
	}

	a2, err := replay.Run(live, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, a2) {
		t.Fatal("second live run diverged: controller state leaked across Run calls")
	}

	rep := sloScenario(t, true)
	b, err := replay.Run(rep, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed SLO run diverged from live:\nlive   reconfigs=%d %+v\nreplay reconfigs=%d %+v",
			a.QoSReconfigs, a.QoSFinal, b.QoSReconfigs, b.QoSFinal)
	}
}

// TestDynamicQoSValidationErrors: timelines and SLOs that cannot be
// resolved against the scenario fail before any simulation.
func TestDynamicQoSValidationErrors(t *testing.T) {
	o := replay.Options{Scale: 1e-8}

	sc := dynScenario(t, false)
	sc.QoS = nil
	sc.Tenants[0].Class, sc.Tenants[1].Class = "", ""
	sc.Policy = []replay.PolicyChange{{At: 100, Class: "bulk"}}
	if _, err := replay.Run(sc, o); err == nil {
		t.Fatal("policy without a QoS table accepted")
	}
	sc.Policy = nil
	sc.SLO = &qos.SLO{Class: "svc", TargetP99: 1000}
	if _, err := replay.Run(sc, o); err == nil {
		t.Fatal("SLO without a QoS table accepted")
	}

	sc = dynScenario(t, false)
	sc.Policy = []replay.PolicyChange{{At: 100, Class: "nope"}}
	if _, err := replay.Run(sc, o); err == nil {
		t.Fatal("unknown policy class accepted")
	}

	sc = dynScenario(t, false)
	sc.Policy = []replay.PolicyChange{{At: 0, Class: "bulk"}}
	if _, err := replay.Run(sc, o); err == nil {
		t.Fatal("t=0 policy change accepted")
	} else if err2 := err; !strings.Contains(err2.Error(), "t=0") {
		t.Fatalf("t=0 rejection does not say why: %v", err2)
	}

	sc = dynScenario(t, false)
	sc.SLO = &qos.SLO{Class: "nope", TargetP99: 1000}
	if _, err := replay.Run(sc, o); err == nil {
		t.Fatal("unknown SLO class accepted")
	}
}
