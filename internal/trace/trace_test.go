package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hams/internal/cpu"
	"hams/internal/mem"
	"hams/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	steps := []cpu.Step{
		{Compute: 10, Acc: []mem.Access{{Addr: 0x1000, Size: 64, Op: mem.Read}}},
		{Compute: 0, Acc: []mem.Access{
			{Addr: 0x2000, Size: 8, Op: mem.Write},
			{Addr: 0x3000, Size: 4096, Op: mem.Read},
		}},
		{Compute: 99},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if err := w.WriteStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Steps() != 3 {
		t.Fatalf("Steps = %d", w.Steps())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range steps {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("step %d missing", i)
		}
		if got.Compute != want.Compute || len(got.Acc) != len(want.Acc) {
			t.Fatalf("step %d = %+v, want %+v", i, got, want)
		}
		for j := range want.Acc {
			if got.Acc[j] != want.Acc[j] {
				t.Fatalf("step %d access %d differs", i, j)
			}
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra step")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatrace"))); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WriteStep(cpu.Step{Compute: 1, Acc: []mem.Access{{Addr: 1, Size: 2}}})
	w.Flush()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated step decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestRecordWorkloadStream(t *testing.T) {
	spec, _ := workload.ByName("rndSel")
	o := workload.DefaultOptions()
	o.Scale = 1e-7
	var buf bytes.Buffer
	n, err := Record(&buf, spec.Streams(o)[0])
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recorded")
	}
	// Replay must be identical to a fresh generation.
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := spec.Streams(o)[0]
	for {
		a, okA := r.Next()
		b, okB := fresh.Next()
		if okA != okB {
			t.Fatal("length mismatch")
		}
		if !okA {
			break
		}
		if a.Compute != b.Compute || len(a.Acc) != len(b.Acc) {
			t.Fatal("step mismatch")
		}
	}
}

// Property: arbitrary steps survive the codec.
func TestCodecProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var steps []cpu.Step
		for i := 0; i < int(n%20); i++ {
			s := cpu.Step{Compute: rng.Int63n(1000)}
			for j := 0; j < rng.Intn(5); j++ {
				s.Acc = append(s.Acc, mem.Access{
					Addr: rng.Uint64(), Size: uint32(rng.Intn(1 << 20)), Op: mem.Op(rng.Intn(2)),
				})
			}
			steps = append(steps, s)
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, s := range steps {
			if w.WriteStep(s) != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range steps {
			got, ok := r.Next()
			if !ok || got.Compute != want.Compute || len(got.Acc) != len(want.Acc) {
				return false
			}
			for j := range want.Acc {
				if got.Acc[j] != want.Acc[j] {
					return false
				}
			}
		}
		_, ok := r.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
