package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"testing/quick"

	"hams/internal/cpu"
	"hams/internal/mem"
	"hams/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	steps := []cpu.Step{
		{Compute: 10, Acc: []mem.Access{{Addr: 0x1000, Size: 64, Op: mem.Read}}},
		{Compute: 0, Acc: []mem.Access{
			{Addr: 0x2000, Size: 8, Op: mem.Write},
			{Addr: 0x3000, Size: 4096, Op: mem.Read},
		}},
		{Compute: 99},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if err := w.WriteStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Steps() != 3 {
		t.Fatalf("Steps = %d", w.Steps())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range steps {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("step %d missing", i)
		}
		if got.Compute != want.Compute || len(got.Acc) != len(want.Acc) {
			t.Fatalf("step %d = %+v, want %+v", i, got, want)
		}
		for j := range want.Acc {
			if got.Acc[j] != want.Acc[j] {
				t.Fatalf("step %d access %d differs", i, j)
			}
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra step")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatrace"))); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WriteStep(cpu.Step{Compute: 1, Acc: []mem.Access{{Addr: 1, Size: 2}}})
	w.Flush()
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated step decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestRecordWorkloadStream(t *testing.T) {
	spec, _ := workload.ByName("rndSel")
	o := workload.DefaultOptions()
	o.Scale = 1e-7
	var buf bytes.Buffer
	n, err := Record(&buf, spec.Streams(o)[0])
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recorded")
	}
	// Replay must be identical to a fresh generation.
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := spec.Streams(o)[0]
	for {
		a, okA := r.Next()
		b, okB := fresh.Next()
		if okA != okB {
			t.Fatal("length mismatch")
		}
		if !okA {
			break
		}
		if a.Compute != b.Compute || len(a.Acc) != len(b.Acc) {
			t.Fatal("step mismatch")
		}
	}
}

// TestV2RoundTrip drives the v2 container: labels, warm regions, a
// container name, and interleaved multi-thread records.
func TestV2RoundTrip(t *testing.T) {
	f := &File{
		Version: Version2,
		Name:    "mix",
		Threads: []Thread{
			{Label: "tenantA", Steps: []cpu.Step{
				{Compute: 5, Acc: []mem.Access{{Addr: 0x100, Size: 64, Op: mem.Read}}},
				{Compute: 7},
			}},
			{Label: "tenantB", Steps: []cpu.Step{
				{Compute: 1, Acc: []mem.Access{
					{Addr: 0x2000, Size: 8, Op: mem.Write},
					{Addr: 0x3000, Size: 4096, Op: mem.Read},
				}},
			}},
		},
		Warm: []Region{{Base: 0, Size: 1 << 20}, {Base: 1 << 30, Size: 4096}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", f, got)
	}
	if labels := got.Labels(); !reflect.DeepEqual(labels, []string{"tenantA", "tenantB"}) {
		t.Fatalf("Labels = %v", labels)
	}
	if n := got.Steps(); n != 3 {
		t.Fatalf("Steps = %d", n)
	}
	if ss := got.StreamsFor("tenantB"); len(ss) != 1 {
		t.Fatalf("StreamsFor(tenantB) = %d streams", len(ss))
	}
}

// TestRecordAllInterleaves drains unequal-length streams and checks
// the demuxed result matches each input.
func TestRecordAllInterleaves(t *testing.T) {
	a := []cpu.Step{{Compute: 1}, {Compute: 2}, {Compute: 3}}
	b := []cpu.Step{{Compute: 10}}
	var buf bytes.Buffer
	n, err := RecordAll(&buf, "two", []string{"a", "b"}, nil,
		[]cpu.Stream{&stepStream{steps: a}, &stepStream{steps: b}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("steps = %d", n)
	}
	f, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Threads[0].Steps, a) || !reflect.DeepEqual(f.Threads[1].Steps, b) {
		t.Fatalf("demux mismatch: %+v", f.Threads)
	}
}

// TestStreamUnits: a replayed stream counts consumed steps as units.
func TestStreamUnits(t *testing.T) {
	s := &stepStream{steps: []cpu.Step{{Compute: 1}, {Compute: 2}}}
	if s.Units() != 0 {
		t.Fatal("units before consumption")
	}
	s.Next()
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatal("stream over-delivers")
	}
	if s.Units() != 2 {
		t.Fatalf("Units = %d", s.Units())
	}
}

// TestHugeCountRejected is the regression test for the decoder OOM: a
// step header declaring ~4 billion accesses must yield ErrCorrupt from
// both the streaming v1 reader and the container decoder, not an
// unbounded read loop. The same bytes are committed as a fuzz corpus
// entry (testdata/fuzz/FuzzTraceReader).
func TestHugeCountRejected(t *testing.T) {
	raw := []byte("SMAH\x01\x00\x00\x00" + // v1 header
		"\x00\x00\x00\x00\x00\x00\x00\x00" + // compute
		"\xff\xff\xff\xff") // access count 2^32-1
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("huge-count step decoded")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode err = %v, want ErrCorrupt", err)
	}
}

// TestV2Bounds: every v2 count field is validated before use.
func TestV2Bounds(t *testing.T) {
	v2hdr := "SMAH\x02\x00\x00\x00"
	cases := map[string][]byte{
		"huge thread count": []byte(v2hdr + "\x00\x00" + "\xff\xff\xff\xff"),
		"zero threads":      []byte(v2hdr + "\x00\x00" + "\x00\x00\x00\x00"),
		"huge label":        []byte(v2hdr + "\x00\x00" + "\x01\x00\x00\x00" + "\xff\xff"),
		"huge warm count": []byte(v2hdr + "\x00\x00" + "\x01\x00\x00\x00" + "\x00\x00" +
			"\xff\xff\xff\xff"),
		"thread id out of range": []byte(v2hdr + "\x00\x00" + "\x01\x00\x00\x00" + "\x00\x00" +
			"\x00\x00\x00\x00" + "\x07\x00\x00\x00"),
	}
	for name, raw := range cases {
		if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestWriterV2Bounds: the writer refuses inputs the decoder would
// reject, so every written trace is decodable.
func TestWriterV2Bounds(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriterV2(&buf, "x", nil, nil); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := NewWriterV2(&buf, "x", []string{string(make([]byte, MaxLabel+1))}, nil); err == nil {
		t.Fatal("oversized label accepted")
	}
	w, err := NewWriterV2(&buf, "x", []string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStep(1, cpu.Step{}); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
}

// TestV1FixtureBackwardCompat decodes a committed pre-v2 trace through
// the v2 Decode path: old recordings must stay readable forever. The
// pinned counts were recorded when the fixture was generated (rndSel
// thread 0, scale 1e-8, seed 42).
func TestV1FixtureBackwardCompat(t *testing.T) {
	raw, err := os.ReadFile("testdata/v1_rndsel.trace")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != Version1 || len(f.Threads) != 1 || len(f.Warm) != 0 {
		t.Fatalf("shape = v%d, %d threads, %d warm", f.Version, len(f.Threads), len(f.Warm))
	}
	if n := len(f.Threads[0].Steps); n != 6 {
		t.Fatalf("steps = %d, want 6", n)
	}
	var accesses, loads, compute int64
	for _, s := range f.Threads[0].Steps {
		compute += s.Compute
		for _, a := range s.Acc {
			accesses++
			if a.Op == mem.Read {
				loads++
			}
		}
	}
	if accesses != 1098 || loads != 618 || compute != 1296 {
		t.Fatalf("accesses=%d loads=%d compute=%d, want 1098/618/1296", accesses, loads, compute)
	}
	// The streaming v1 reader sees the same steps.
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		s, ok := r.Next()
		if !ok {
			if i != 6 {
				t.Fatalf("streaming reader returned %d steps", i)
			}
			break
		}
		if !reflect.DeepEqual(s, f.Threads[0].Steps[i]) {
			t.Fatalf("step %d differs between readers", i)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// Property: arbitrary steps survive the codec.
func TestCodecProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var steps []cpu.Step
		for i := 0; i < int(n%20); i++ {
			s := cpu.Step{Compute: rng.Int63n(1000)}
			for j := 0; j < rng.Intn(5); j++ {
				s.Acc = append(s.Acc, mem.Access{
					Addr: rng.Uint64(), Size: uint32(rng.Intn(1 << 20)), Op: mem.Op(rng.Intn(2)),
				})
			}
			steps = append(steps, s)
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, s := range steps {
			if w.WriteStep(s) != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range steps {
			got, ok := r.Next()
			if !ok || got.Compute != want.Compute || len(got.Acc) != len(want.Acc) {
				return false
			}
			for j := range want.Acc {
				if got.Acc[j] != want.Acc[j] {
					return false
				}
			}
		}
		_, ok := r.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
