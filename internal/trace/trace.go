// Package trace records and replays memory-access streams in a compact
// binary format, so experiment inputs can be captured once and re-run
// bit-identically across platforms or library versions.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hams/internal/cpu"
	"hams/internal/mem"
)

// magic identifies the stream format; version gates decoding.
const (
	magic   = 0x48414D53 // "HAMS"
	version = 1
)

// Writer serializes steps.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter writes a stream header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteStep appends one step: varint-free fixed encoding —
// compute (8B), access count (4B), then 13B per access.
func (t *Writer) WriteStep(s cpu.Step) error {
	if t.err != nil {
		return t.err
	}
	var b [12]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(s.Compute))
	binary.LittleEndian.PutUint32(b[8:], uint32(len(s.Acc)))
	if _, err := t.w.Write(b[:]); err != nil {
		t.err = err
		return err
	}
	var ab [13]byte
	for _, a := range s.Acc {
		binary.LittleEndian.PutUint64(ab[0:], a.Addr)
		binary.LittleEndian.PutUint32(ab[8:], a.Size)
		ab[12] = byte(a.Op)
		if _, err := t.w.Write(ab[:]); err != nil {
			t.err = err
			return err
		}
	}
	t.n++
	return nil
}

// Steps returns the number of steps written.
func (t *Writer) Steps() int64 { return t.n }

// Flush drains the buffer.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// ErrBadHeader marks a stream that is not a HAMS trace.
var ErrBadHeader = errors.New("trace: bad header")

// Reader decodes a stream; it implements cpu.Stream.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, ErrBadHeader
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br}, nil
}

// Next implements cpu.Stream: it returns the next step, or ok=false at
// end of stream (or on a decode error, retrievable via Err).
func (t *Reader) Next() (cpu.Step, bool) {
	if t.err != nil {
		return cpu.Step{}, false
	}
	var b [12]byte
	if _, err := io.ReadFull(t.r, b[:]); err != nil {
		if err != io.EOF {
			t.err = err
		}
		return cpu.Step{}, false
	}
	s := cpu.Step{Compute: int64(binary.LittleEndian.Uint64(b[0:]))}
	n := binary.LittleEndian.Uint32(b[8:])
	var ab [13]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(t.r, ab[:]); err != nil {
			t.err = fmt.Errorf("trace: truncated access: %w", err)
			return cpu.Step{}, false
		}
		s.Acc = append(s.Acc, mem.Access{
			Addr: binary.LittleEndian.Uint64(ab[0:]),
			Size: binary.LittleEndian.Uint32(ab[8:]),
			Op:   mem.Op(ab[12]),
		})
	}
	return s, true
}

// Err returns the first decode error, if any.
func (t *Reader) Err() error { return t.err }

// Record drains a stream into w, returning the number of steps.
func Record(w io.Writer, s cpu.Stream) (int64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for {
		step, ok := s.Next()
		if !ok {
			break
		}
		if err := tw.WriteStep(step); err != nil {
			return tw.Steps(), err
		}
	}
	return tw.Steps(), tw.Flush()
}
