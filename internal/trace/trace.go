// Package trace records and replays memory-access streams in a compact
// binary container, so experiment inputs can be captured once and
// re-run bit-identically across platforms or library versions.
//
// Two container versions exist:
//
//   - v1: a single unlabeled stream of steps (legacy; still decoded).
//   - v2: multi-thread streams with per-thread tenant labels, the
//     workload's warm (steady-state) regions, and a container name —
//     everything internal/replay needs to reproduce a live run
//     bit-for-bit or to compose the trace into a multi-tenant
//     scenario.
//
// Every count field decoded from a file is validated against a hard
// bound before it steers any allocation or loop; a corrupt or
// adversarial trace yields an error wrapping ErrCorrupt, never an
// unbounded allocation.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hams/internal/cpu"
	"hams/internal/mem"
)

// magic identifies the stream format; the version field gates decoding.
const (
	magic    = 0x48414D53 // "HAMS"
	Version1 = 1
	Version2 = 2
)

// Decoder bounds. A trace is attacker-controlled input (users replay
// files they did not record), so every count read from the wire is
// checked against these before use.
const (
	// MaxStepAccesses bounds one step's access count. The widest
	// generator step (a 4 KiB page copy plus ratio filler) is a few
	// hundred accesses; 1<<20 leaves three orders of magnitude slack.
	MaxStepAccesses = 1 << 20
	// MaxThreads bounds the v2 thread table.
	MaxThreads = 1 << 12
	// MaxLabel bounds one thread label's byte length.
	MaxLabel = 256
	// MaxWarmRegions bounds the v2 warm-region table.
	MaxWarmRegions = 1 << 16
	// maxName bounds the container name's byte length.
	maxName = 1 << 12
)

// ErrBadHeader marks a stream that is not a HAMS trace.
var ErrBadHeader = errors.New("trace: bad header")

// ErrCorrupt marks a structurally invalid trace: a count field beyond
// its bound, an out-of-range thread ID, or a truncated record.
var ErrCorrupt = errors.New("trace: corrupt stream")

// Region is an address range the recorded workload keeps hot; replay
// warms platform caches with it before driving the streams, standing
// in for the steady state a full-length live run reaches.
type Region struct {
	Base, Size uint64
}

// ---------------------------------------------------------------------
// v1 writer/reader: single-stream, kept for backward compatibility
// (old traces decode forever; Decode below handles both versions).

// Writer serializes steps in the legacy v1 single-stream layout.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter writes a v1 stream header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version1)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteStep appends one step: varint-free fixed encoding —
// compute (8B), access count (4B), then 13B per access.
func (t *Writer) WriteStep(s cpu.Step) error {
	if t.err != nil {
		return t.err
	}
	if err := writeStep(t.w, s); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Steps returns the number of steps written.
func (t *Writer) Steps() int64 { return t.n }

// Flush drains the buffer.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a v1 stream; it implements cpu.Stream. Multi-thread
// v2 containers carry interleaved per-thread records and cannot be
// exposed as a single stream — use Decode for those (it also accepts
// v1).
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader validates the header and returns a v1 stream reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	v, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if v != Version1 {
		return nil, fmt.Errorf("trace: version %d container: use trace.Decode", v)
	}
	return &Reader{r: br}, nil
}

// Next implements cpu.Stream: it returns the next step, or ok=false at
// end of stream (or on a decode error, retrievable via Err).
func (t *Reader) Next() (cpu.Step, bool) {
	if t.err != nil {
		return cpu.Step{}, false
	}
	s, err := readStep(t.r)
	if err != nil {
		if err != io.EOF {
			t.err = err
		}
		return cpu.Step{}, false
	}
	return s, true
}

// Err returns the first decode error, if any.
func (t *Reader) Err() error { return t.err }

// Record drains a stream into w as a v1 trace, returning the number of
// steps. New recordings should prefer RecordAll (v2).
func Record(w io.Writer, s cpu.Stream) (int64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	for {
		step, ok := s.Next()
		if !ok {
			break
		}
		if err := tw.WriteStep(step); err != nil {
			return tw.Steps(), err
		}
	}
	return tw.Steps(), tw.Flush()
}

// ---------------------------------------------------------------------
// Shared step codec: compute (8B), access count (4B), 13B per access.

func writeStep(w *bufio.Writer, s cpu.Step) error {
	if len(s.Acc) > MaxStepAccesses {
		return fmt.Errorf("trace: step has %d accesses, limit %d", len(s.Acc), MaxStepAccesses)
	}
	var b [12]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(s.Compute))
	binary.LittleEndian.PutUint32(b[8:], uint32(len(s.Acc)))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	var ab [13]byte
	for _, a := range s.Acc {
		binary.LittleEndian.PutUint64(ab[0:], a.Addr)
		binary.LittleEndian.PutUint32(ab[8:], a.Size)
		ab[12] = byte(a.Op)
		if _, err := w.Write(ab[:]); err != nil {
			return err
		}
	}
	return nil
}

// readStep decodes one step body. io.EOF means a clean end of stream
// (no partial step consumed); any other error wraps ErrCorrupt.
func readStep(br *bufio.Reader) (cpu.Step, error) {
	var b [12]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		if err == io.EOF {
			return cpu.Step{}, io.EOF
		}
		return cpu.Step{}, fmt.Errorf("%w: truncated step header: %v", ErrCorrupt, err)
	}
	s := cpu.Step{Compute: int64(binary.LittleEndian.Uint64(b[0:]))}
	n := binary.LittleEndian.Uint32(b[8:])
	// The count comes off the wire: bound it before it drives the read
	// loop. Without this check a crafted count of ~4 billion walks an
	// append loop for as long as the input can feed it (OOM on piped or
	// adversarial streams).
	if n > MaxStepAccesses {
		return cpu.Step{}, fmt.Errorf("%w: step access count %d exceeds limit %d", ErrCorrupt, n, MaxStepAccesses)
	}
	if n == 0 {
		return s, nil
	}
	// Pre-size from the count but never trust it for more than a small
	// starting capacity — growth beyond that is paid for by real data.
	capHint := n
	if capHint > 1024 {
		capHint = 1024
	}
	s.Acc = make([]mem.Access, 0, capHint)
	var ab [13]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, ab[:]); err != nil {
			return cpu.Step{}, fmt.Errorf("%w: truncated access: %v", ErrCorrupt, err)
		}
		s.Acc = append(s.Acc, mem.Access{
			Addr: binary.LittleEndian.Uint64(ab[0:]),
			Size: binary.LittleEndian.Uint32(ab[8:]),
			Op:   mem.Op(ab[12]),
		})
	}
	return s, nil
}

func readHeader(br *bufio.Reader) (int, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return 0, ErrBadHeader
	}
	return int(binary.LittleEndian.Uint32(hdr[4:])), nil
}

// ---------------------------------------------------------------------
// v2: multi-thread container.
//
// Layout after the 8-byte header:
//
//	name     uint16 len | bytes
//	threads  uint32 count
//	         per thread: uint16 label len | label bytes
//	warm     uint32 count
//	         per region: uint64 base | uint64 size
//	records  until EOF: uint32 thread ID | step body (shared codec)

// Thread is one recorded stream with its tenant label.
type Thread struct {
	Label string
	Steps []cpu.Step
}

// File is a fully decoded trace container.
type File struct {
	Version int
	Name    string
	Threads []Thread
	Warm    []Region
}

// Steps returns the total number of steps across all threads.
func (f *File) Steps() int64 {
	var n int64
	for _, t := range f.Threads {
		n += int64(len(t.Steps))
	}
	return n
}

// Labels returns the distinct thread labels in order of first
// appearance.
func (f *File) Labels() []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range f.Threads {
		if !seen[t.Label] {
			seen[t.Label] = true
			out = append(out, t.Label)
		}
	}
	return out
}

// Streams returns one replayable cpu.Stream per thread. Each stream
// also counts consumed steps via a Units() method — for the Table III
// generators one step is one work unit (page or SQL op), so replayed
// throughput stays commensurable with live runs.
func (f *File) Streams() []cpu.Stream { return f.StreamsFor("") }

// StreamsFor returns streams for the threads carrying the given tenant
// label; the empty label selects every thread.
func (f *File) StreamsFor(label string) []cpu.Stream {
	var out []cpu.Stream
	for i := range f.Threads {
		if label != "" && f.Threads[i].Label != label {
			continue
		}
		out = append(out, &stepStream{steps: f.Threads[i].Steps})
	}
	return out
}

type stepStream struct {
	steps []cpu.Step
	pos   int
}

func (s *stepStream) Next() (cpu.Step, bool) {
	if s.pos >= len(s.steps) {
		return cpu.Step{}, false
	}
	st := s.steps[s.pos]
	s.pos++
	return st, true
}

// Units implements workload.Progress: steps consumed so far.
func (s *stepStream) Units() int64 { return int64(s.pos) }

// WriterV2 serializes a multi-thread container incrementally.
type WriterV2 struct {
	w       *bufio.Writer
	threads int
	n       int64
	err     error
}

// NewWriterV2 writes the v2 header, thread table (one tenant label per
// thread), and warm-region table, and returns the writer.
func NewWriterV2(w io.Writer, name string, labels []string, warm []Region) (*WriterV2, error) {
	if len(labels) == 0 || len(labels) > MaxThreads {
		return nil, fmt.Errorf("trace: thread count %d outside [1, %d]", len(labels), MaxThreads)
	}
	if len(name) > maxName {
		return nil, fmt.Errorf("trace: name length %d exceeds limit %d", len(name), maxName)
	}
	if len(warm) > MaxWarmRegions {
		return nil, fmt.Errorf("trace: warm region count %d exceeds limit %d", len(warm), MaxWarmRegions)
	}
	for _, l := range labels {
		if len(l) > MaxLabel {
			return nil, fmt.Errorf("trace: label length %d exceeds limit %d", len(l), MaxLabel)
		}
	}
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version2)
	bw.Write(hdr[:])
	writeString(bw, name)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(labels)))
	bw.Write(cnt[:])
	for _, l := range labels {
		writeString(bw, l)
	}
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(warm)))
	bw.Write(cnt[:])
	var rb [16]byte
	for _, r := range warm {
		binary.LittleEndian.PutUint64(rb[0:], r.Base)
		binary.LittleEndian.PutUint64(rb[8:], r.Size)
		bw.Write(rb[:])
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &WriterV2{w: bw, threads: len(labels)}, nil
}

// WriteStep appends one step for the given thread.
func (t *WriterV2) WriteStep(thread int, s cpu.Step) error {
	if t.err != nil {
		return t.err
	}
	if thread < 0 || thread >= t.threads {
		return fmt.Errorf("trace: thread %d out of range [0, %d)", thread, t.threads)
	}
	var tb [4]byte
	binary.LittleEndian.PutUint32(tb[:], uint32(thread))
	if _, err := t.w.Write(tb[:]); err != nil {
		t.err = err
		return err
	}
	if err := writeStep(t.w, s); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Steps returns the number of steps written across all threads.
func (t *WriterV2) Steps() int64 { return t.n }

// Flush drains the buffer.
func (t *WriterV2) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

func writeString(w *bufio.Writer, s string) {
	var lb [2]byte
	binary.LittleEndian.PutUint16(lb[:], uint16(len(s)))
	w.Write(lb[:])
	w.WriteString(s)
}

// RecordAll drains every stream into a v2 container, one tenant label
// per stream, interleaving steps round-robin. The on-disk order is
// irrelevant — Decode demuxes per thread — but interleaving keeps a
// truncated file roughly balanced across threads. It returns the total
// number of steps recorded.
func RecordAll(w io.Writer, name string, labels []string, warm []Region, streams []cpu.Stream) (int64, error) {
	if len(streams) != len(labels) {
		return 0, fmt.Errorf("trace: %d streams but %d labels", len(streams), len(labels))
	}
	tw, err := NewWriterV2(w, name, labels, warm)
	if err != nil {
		return 0, err
	}
	live := make([]bool, len(streams))
	for i := range live {
		live[i] = true
	}
	active := len(streams)
	for active > 0 {
		for i, s := range streams {
			if !live[i] {
				continue
			}
			step, ok := s.Next()
			if !ok {
				live[i] = false
				active--
				continue
			}
			if err := tw.WriteStep(i, step); err != nil {
				return tw.Steps(), err
			}
		}
	}
	return tw.Steps(), tw.Flush()
}

// Encode serializes a File as a v2 container (regardless of the
// version it was decoded from).
func Encode(w io.Writer, f *File) error {
	labels := make([]string, len(f.Threads))
	for i, t := range f.Threads {
		labels[i] = t.Label
	}
	tw, err := NewWriterV2(w, f.Name, labels, f.Warm)
	if err != nil {
		return err
	}
	for ti, th := range f.Threads {
		for _, s := range th.Steps {
			if err := tw.WriteStep(ti, s); err != nil {
				return err
			}
		}
	}
	return tw.Flush()
}

// Decode reads an entire trace container — v1 or v2 — into memory,
// demuxing interleaved records into per-thread step lists. A v1 stream
// decodes as a single unlabeled thread with no warm regions.
func Decode(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	v, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	switch v {
	case Version1:
		return decodeV1(br)
	case Version2:
		return decodeV2(br)
	default:
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
}

func decodeV1(br *bufio.Reader) (*File, error) {
	f := &File{Version: Version1, Threads: []Thread{{}}}
	for {
		s, err := readStep(br)
		if err == io.EOF {
			return f, nil
		}
		if err != nil {
			return nil, err
		}
		f.Threads[0].Steps = append(f.Threads[0].Steps, s)
	}
}

func decodeV2(br *bufio.Reader) (*File, error) {
	f := &File{Version: Version2}
	name, err := readString(br, maxName, "name")
	if err != nil {
		return nil, err
	}
	f.Name = name
	nThreads, err := readCount(br, MaxThreads, "thread")
	if err != nil {
		return nil, err
	}
	if nThreads == 0 {
		return nil, fmt.Errorf("%w: zero threads", ErrCorrupt)
	}
	f.Threads = make([]Thread, nThreads)
	for i := range f.Threads {
		l, err := readString(br, MaxLabel, "label")
		if err != nil {
			return nil, err
		}
		f.Threads[i].Label = l
	}
	nWarm, err := readCount(br, MaxWarmRegions, "warm region")
	if err != nil {
		return nil, err
	}
	if nWarm > 0 {
		f.Warm = make([]Region, nWarm)
		var rb [16]byte
		for i := range f.Warm {
			if _, err := io.ReadFull(br, rb[:]); err != nil {
				return nil, fmt.Errorf("%w: truncated warm region: %v", ErrCorrupt, err)
			}
			f.Warm[i] = Region{
				Base: binary.LittleEndian.Uint64(rb[0:]),
				Size: binary.LittleEndian.Uint64(rb[8:]),
			}
		}
	}
	var tb [4]byte
	for {
		if _, err := io.ReadFull(br, tb[:]); err != nil {
			if err == io.EOF {
				return f, nil
			}
			return nil, fmt.Errorf("%w: truncated record header: %v", ErrCorrupt, err)
		}
		ti := binary.LittleEndian.Uint32(tb[:])
		if ti >= nThreads {
			return nil, fmt.Errorf("%w: record thread %d out of range [0, %d)", ErrCorrupt, ti, nThreads)
		}
		s, err := readStep(br)
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("%w: record header without step body", ErrCorrupt)
			}
			return nil, err
		}
		f.Threads[ti].Steps = append(f.Threads[ti].Steps, s)
	}
}

func readCount(br *bufio.Reader, limit uint32, what string) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated %s count: %v", ErrCorrupt, what, err)
	}
	n := binary.LittleEndian.Uint32(b[:])
	if n > limit {
		return 0, fmt.Errorf("%w: %s count %d exceeds limit %d", ErrCorrupt, what, n, limit)
	}
	return n, nil
}

func readString(br *bufio.Reader, limit int, what string) (string, error) {
	var lb [2]byte
	if _, err := io.ReadFull(br, lb[:]); err != nil {
		return "", fmt.Errorf("%w: truncated %s length: %v", ErrCorrupt, what, err)
	}
	n := int(binary.LittleEndian.Uint16(lb[:]))
	if n > limit {
		return "", fmt.Errorf("%w: %s length %d exceeds limit %d", ErrCorrupt, what, n, limit)
	}
	if n == 0 {
		return "", nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", fmt.Errorf("%w: truncated %s: %v", ErrCorrupt, what, err)
	}
	return string(b), nil
}
