package trace

import (
	"bytes"
	"reflect"
	"testing"

	"hams/internal/cpu"
	"hams/internal/mem"
)

// FuzzTraceReader feeds arbitrary bytes to both decoders (the
// streaming v1 reader and the v1+v2 container Decode). Traces are
// attacker-controlled input — users replay files they did not record —
// so the decoders must never panic, loop unboundedly, or let a wire
// count drive an allocation; and any input that decodes must survive a
// re-encode → re-decode round trip unchanged.
func FuzzTraceReader(f *testing.F) {
	// Valid v1 stream.
	var v1 bytes.Buffer
	w, _ := NewWriter(&v1)
	w.WriteStep(cpu.Step{Compute: 3, Acc: []mem.Access{{Addr: 0x1000, Size: 64, Op: mem.Read}}})
	w.WriteStep(cpu.Step{Compute: 9})
	w.Flush()
	f.Add(v1.Bytes())
	// Valid v2 container with labels and warm regions.
	var v2 bytes.Buffer
	Encode(&v2, &File{
		Version: Version2,
		Name:    "seed",
		Threads: []Thread{
			{Label: "a", Steps: []cpu.Step{{Compute: 1, Acc: []mem.Access{{Addr: 8, Size: 8, Op: mem.Write}}}}},
			{Label: "b", Steps: []cpu.Step{{Compute: 2}}},
		},
		Warm: []Region{{Base: 0, Size: 4096}},
	})
	f.Add(v2.Bytes())
	// Truncated v1, bare headers, garbage.
	f.Add(v1.Bytes()[:len(v1.Bytes())-3])
	f.Add([]byte("SMAH\x01\x00\x00\x00"))
	f.Add([]byte("SMAH\x02\x00\x00\x00"))
	f.Add([]byte("not a trace at all"))
	// The count-OOM regression: a step declaring 2^32-1 accesses.
	f.Add([]byte("SMAH\x01\x00\x00\x00" +
		"\x00\x00\x00\x00\x00\x00\x00\x00" + "\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Streaming v1 reader: drain with a step cap so a decoder bug
		// that fabricates steps cannot stall the fuzzer.
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			for i := 0; i < 1<<16; i++ {
				s, ok := r.Next()
				if !ok {
					break
				}
				if len(s.Acc) > MaxStepAccesses {
					t.Fatalf("step with %d accesses escaped the bound", len(s.Acc))
				}
			}
		}
		// Container decode (v1 + v2).
		f1, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, th := range f1.Threads {
			for _, s := range th.Steps {
				if len(s.Acc) > MaxStepAccesses {
					t.Fatalf("step with %d accesses escaped the bound", len(s.Acc))
				}
			}
		}
		// Round trip: anything that decodes re-encodes losslessly.
		var buf bytes.Buffer
		if err := Encode(&buf, f1); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		f2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		f1.Version = Version2 // Encode always writes v2
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("round trip mismatch:\nfirst  %+v\nsecond %+v", f1, f2)
		}
	})
}
