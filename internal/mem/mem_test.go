package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAlign(t *testing.T) {
	if AlignDown(0x12345, 0x1000) != 0x12000 {
		t.Fatal("AlignDown")
	}
	if AlignUp(0x12345, 0x1000) != 0x13000 {
		t.Fatal("AlignUp")
	}
	if AlignUp(0x12000, 0x1000) != 0x12000 {
		t.Fatal("AlignUp on aligned value must be identity")
	}
	if AlignDown(0x12000, 0x1000) != 0x12000 {
		t.Fatal("AlignDown on aligned value must be identity")
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 1024, 1 << 40} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 1000} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 4096: 12, 1 << 20: 20}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op.String")
	}
}

func TestAccessEnd(t *testing.T) {
	a := Access{Addr: 100, Size: 28}
	if a.End() != 128 {
		t.Fatalf("End() = %d", a.End())
	}
}

func TestSplitByPageSinglePage(t *testing.T) {
	a := Access{Addr: 0x1010, Size: 64, Op: Read}
	parts := SplitByPage(a, 4096)
	if len(parts) != 1 || parts[0] != a {
		t.Fatalf("parts = %v", parts)
	}
}

func TestSplitByPageStraddle(t *testing.T) {
	a := Access{Addr: 4090, Size: 12, Op: Write}
	parts := SplitByPage(a, 4096)
	if len(parts) != 2 {
		t.Fatalf("len(parts) = %d, want 2", len(parts))
	}
	if parts[0].Addr != 4090 || parts[0].Size != 6 {
		t.Fatalf("part0 = %v", parts[0])
	}
	if parts[1].Addr != 4096 || parts[1].Size != 6 {
		t.Fatalf("part1 = %v", parts[1])
	}
	if parts[0].Op != Write || parts[1].Op != Write {
		t.Fatal("Op must be preserved")
	}
}

func TestSplitByPageZeroSize(t *testing.T) {
	if parts := SplitByPage(Access{Addr: 10, Size: 0}, 4096); parts != nil {
		t.Fatalf("zero-size access split = %v, want nil", parts)
	}
}

// Property: SplitByPage covers exactly the original byte range,
// contiguously, with every part inside one page.
func TestSplitByPageProperty(t *testing.T) {
	f := func(addr uint32, size uint16, shift uint8) bool {
		pageSize := uint64(1) << (10 + shift%8) // 1 KiB .. 128 KiB
		a := Access{Addr: uint64(addr), Size: uint32(size)%20000 + 1, Op: Read}
		parts := SplitByPage(a, pageSize)
		var total uint64
		next := a.Addr
		for _, p := range parts {
			if p.Addr != next {
				return false
			}
			if AlignDown(p.Addr, pageSize) != AlignDown(p.End()-1, pageSize) {
				return false
			}
			next = p.End()
			total += uint64(p.Size)
		}
		return total == uint64(a.Size) && next == a.End()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseStoreReadUnwrittenIsZero(t *testing.T) {
	s := NewSparseStore()
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = 0xFF
	}
	s.ReadAt(1<<40, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten bytes must read as zero")
		}
	}
	if s.Frames() != 0 {
		t.Fatal("read must not allocate frames")
	}
}

func TestSparseStoreRoundTrip(t *testing.T) {
	s := NewSparseStore()
	data := []byte("hello, memory-over-storage")
	addr := uint64(4*KiB - 5) // straddle a frame boundary
	s.WriteAt(addr, data)
	got := make([]byte, len(data))
	s.ReadAt(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestSparseStoreCopy(t *testing.T) {
	s := NewSparseStore()
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	s.WriteAt(100, data)
	s.Copy(8190, 100, 8) // destination straddles a frame boundary
	got := make([]byte, 8)
	s.ReadAt(8190, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("copy mismatch: %v", got)
	}
}

func TestSparseStoreCopySelfIsNoop(t *testing.T) {
	s := NewSparseStore()
	s.WriteAt(0, []byte{9})
	s.Copy(0, 0, 4096)
	got := make([]byte, 1)
	s.ReadAt(0, got)
	if got[0] != 9 {
		t.Fatal("self copy corrupted data")
	}
}

func TestSparseStoreZero(t *testing.T) {
	s := NewSparseStore()
	s.WriteAt(0, bytes.Repeat([]byte{0xAB}, 10*KiB))
	s.Zero(100, 9*KiB)
	buf := make([]byte, 10*KiB)
	s.ReadAt(0, buf)
	for i, b := range buf {
		want := byte(0xAB)
		if i >= 100 && i < 100+9*KiB {
			want = 0
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestSparseStoreSnapshotIsDeep(t *testing.T) {
	s := NewSparseStore()
	s.WriteAt(0, []byte{1, 2, 3})
	snap := s.Snapshot()
	s.WriteAt(0, []byte{9, 9, 9})
	got := make([]byte, 3)
	snap.ReadAt(0, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("snapshot mutated: %v", got)
	}
	s.Restore(snap)
	s2 := make([]byte, 3)
	s.ReadAt(0, s2)
	if !bytes.Equal(s2, []byte{1, 2, 3}) {
		t.Fatalf("restore failed: %v", s2)
	}
	// Restored frames must be independent of the snapshot.
	s.WriteAt(0, []byte{7})
	snap.ReadAt(0, got)
	if got[0] != 1 {
		t.Fatal("restore aliased snapshot frames")
	}
}

// Property: write-then-read round trips at arbitrary addresses/sizes.
func TestSparseStoreRoundTripProperty(t *testing.T) {
	s := NewSparseStore()
	f := func(seed int64, addr uint32, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%9000+1)
		rng.Read(data)
		s.WriteAt(uint64(addr), data)
		got := make([]byte, len(data))
		s.ReadAt(uint64(addr), got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
