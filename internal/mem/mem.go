// Package mem defines the memory access vocabulary shared by every
// device model, and a sparse byte-addressable page store used to give
// the simulated devices functional (data-carrying) behaviour.
package mem

import "fmt"

// Op distinguishes reads from writes.
type Op uint8

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Access is one memory reference as seen by the memory system: a byte
// address in the 64-bit MoS address space, a size, and a direction.
type Access struct {
	Addr uint64
	Size uint32
	Op   Op
	// Class tags the request with its QoS class of service (CLOS; see
	// internal/qos). It is an association, not data: trace files do
	// not record it — the replay engine assigns it per tenant — and
	// platforms without a QoS table ignore it. Zero is the default
	// class.
	Class uint8
}

func (a Access) String() string {
	return fmt.Sprintf("%s %dB @ 0x%x", a.Op, a.Size, a.Addr)
}

// End returns the first byte address past the access.
func (a Access) End() uint64 { return a.Addr + uint64(a.Size) }

// Common capacity units (binary).
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// AlignDown rounds addr down to a multiple of align (a power of two).
func AlignDown(addr uint64, align uint64) uint64 { return addr &^ (align - 1) }

// AlignUp rounds addr up to a multiple of align (a power of two).
func AlignUp(addr uint64, align uint64) uint64 {
	return (addr + align - 1) &^ (align - 1)
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)) for v > 0.
func Log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// SplitByPage decomposes an access into per-page sub-accesses of at
// most pageSize bytes, each contained within one pageSize-aligned page.
// pageSize must be a power of two.
func SplitByPage(a Access, pageSize uint64) []Access {
	return AppendSplit(nil, a, pageSize)
}

// AppendSplit appends a's page-granular parts to dst and returns the
// extended slice. Hot paths keep a per-caller scratch slice and call
// AppendSplit(scratch[:0], ...) so the common single-page access
// allocates nothing.
func AppendSplit(dst []Access, a Access, pageSize uint64) []Access {
	if uint64(a.Size) == 0 {
		return dst
	}
	first := AlignDown(a.Addr, pageSize)
	last := AlignDown(a.End()-1, pageSize)
	if first == last {
		return append(dst, a)
	}
	addr := a.Addr
	remain := uint64(a.Size)
	for remain > 0 {
		pageEnd := AlignDown(addr, pageSize) + pageSize
		n := pageEnd - addr
		if n > remain {
			n = remain
		}
		dst = append(dst, Access{Addr: addr, Size: uint32(n), Op: a.Op, Class: a.Class})
		addr += n
		remain -= n
	}
	return dst
}
