package mem

import (
	"fmt"

	"hams/internal/checkpoint"
)

// maxRestoredFrames caps the frames a single image may materialize
// (4 GiB of store). Zero-compressed frames cost ~17 wire bytes, so
// without a cap a hostile 2 GiB section could demand terabytes.
const maxRestoredFrames = 1 << 20

// SaveState serializes the resident frame set: frame count, then
// (fid, 4 KiB payload) pairs in ascending fid order — deterministic by
// construction because the radix table iterates in index order.
// Payloads go through Enc.Page, so the all-zero frames cold fills
// leave behind cost a flag on the wire instead of 4 KiB.
func (s *SparseStore) SaveState(enc *checkpoint.Enc) {
	enc.Count(s.n)
	for ci, ch := range s.chunks {
		if ch == nil {
			continue
		}
		for i, f := range ch {
			if f == nil {
				continue
			}
			enc.U64(uint64(ci)<<framesPerChunkBits | uint64(i))
			enc.Page(f[:])
		}
	}
}

// RestoreState replaces the store's contents with the image's frames.
// The frame count is bounded by the bytes remaining at the minimum
// wire cost of a frame (8-byte fid + zero-compressed page) and by
// maxRestoredFrames, so no unvalidated count sizes an allocation.
func (s *SparseStore) RestoreState(d *checkpoint.Dec) error {
	n := d.CountSized(8 + 9)
	if err := d.Err(); err != nil {
		return err
	}
	if n > maxRestoredFrames {
		return fmt.Errorf("%w: %d frames exceeds limit %d", checkpoint.ErrCorrupt, n, maxRestoredFrames)
	}
	s.chunks = s.chunks[:0]
	s.n = 0
	for i := 0; i < n; i++ {
		fid := d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		// Cap the frame id so a hostile image cannot force the radix
		// spine to balloon: 1<<28 frames covers a 1 TiB address space,
		// far beyond any store the simulator builds.
		if fid >= 1<<28 {
			return fmt.Errorf("%w: frame id %d exceeds limit", checkpoint.ErrCorrupt, fid)
		}
		// PageInto decodes straight into the frame — restore of a
		// multi-GB store is allocation-bound, so no staging buffer.
		d.PageInto(s.ensureFrame(fid)[:])
		if err := d.Err(); err != nil {
			return err
		}
	}
	return d.Err()
}

// SaveState serializes the recency structure: the slot arrays, list
// heads and free list. The radix index is derivable (it maps pages
// back to live slots), so it is rebuilt on restore rather than
// serialized.
func (l *PageLRU) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(l.pages))
	for _, p := range l.pages {
		enc.U64(p)
	}
	for _, v := range l.prev {
		enc.I64(int64(v))
	}
	for _, v := range l.next {
		enc.I64(int64(v))
	}
	enc.I64(int64(l.head))
	enc.I64(int64(l.tail))
	enc.Count(len(l.free))
	for _, v := range l.free {
		enc.I64(int64(v))
	}
	enc.Count(l.n)
}

// RestoreState overlays the recency structure and rebuilds the radix
// index from the live slots. The slot count is bounded by the bytes
// remaining (each slot costs 24 wire bytes across the three arrays).
func (l *PageLRU) RestoreState(d *checkpoint.Dec) error {
	slots := d.CountSized(24)
	if err := d.Err(); err != nil {
		return err
	}
	l.pages = make([]uint64, slots)
	l.prev = make([]int32, slots)
	l.next = make([]int32, slots)
	for i := range l.pages {
		l.pages[i] = d.U64()
	}
	for i := range l.prev {
		l.prev[i] = int32(d.I64())
	}
	for i := range l.next {
		l.next[i] = int32(d.I64())
	}
	l.head = int32(d.I64())
	l.tail = int32(d.I64())
	nfree := d.Count(slots)
	l.free = make([]int32, nfree)
	for i := range l.free {
		l.free[i] = int32(d.I64())
	}
	l.n = d.Count(slots)
	if err := d.Err(); err != nil {
		return err
	}
	isFree := make([]bool, slots)
	for _, f := range l.free {
		if int(f) >= slots || f < 0 {
			return fmt.Errorf("%w: free slot %d out of range", checkpoint.ErrCorrupt, f)
		}
		isFree[f] = true
	}
	l.chunks = l.chunks[:0]
	for slot := 0; slot < slots; slot++ {
		if !isFree[slot] {
			// Cap the page number so a hostile image cannot force the
			// radix spine to balloon (1<<32 pages covers every page
			// space the simulator indexes).
			if l.pages[slot] >= 1<<32 {
				return fmt.Errorf("%w: page %d exceeds limit", checkpoint.ErrCorrupt, l.pages[slot])
			}
			l.index(l.pages[slot], int32(slot)+1)
		}
	}
	return nil
}
