package mem

// SparseStore is a byte-addressable backing store that allocates 4 KiB
// frames lazily. It lets the simulator model terabyte address spaces
// (the 800 GB ULL-Flash archive, an 8 GB NVDIMM) while only paying for
// pages a workload actually touches. Unwritten bytes read as zero.
type SparseStore struct {
	frames map[uint64]*[frameSize]byte
}

const frameSize = 4 * KiB

// NewSparseStore returns an empty store.
func NewSparseStore() *SparseStore {
	return &SparseStore{frames: make(map[uint64]*[frameSize]byte)}
}

// ReadAt copies len(p) bytes starting at addr into p.
func (s *SparseStore) ReadAt(addr uint64, p []byte) {
	for len(p) > 0 {
		fid := addr / frameSize
		off := addr % frameSize
		n := frameSize - off
		if n > uint64(len(p)) {
			n = uint64(len(p))
		}
		if f, ok := s.frames[fid]; ok {
			copy(p[:n], f[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				p[i] = 0
			}
		}
		p = p[n:]
		addr += n
	}
}

// WriteAt copies p into the store starting at addr.
func (s *SparseStore) WriteAt(addr uint64, p []byte) {
	for len(p) > 0 {
		fid := addr / frameSize
		off := addr % frameSize
		n := frameSize - off
		if n > uint64(len(p)) {
			n = uint64(len(p))
		}
		f, ok := s.frames[fid]
		if !ok {
			f = new([frameSize]byte)
			s.frames[fid] = f
		}
		copy(f[off:off+n], p[:n])
		p = p[n:]
		addr += n
	}
}

// Copy moves n bytes from src to dst within the store, tolerating
// overlap (used for page clones into the PRP pool).
func (s *SparseStore) Copy(dst, src uint64, n uint64) {
	if n == 0 || dst == src {
		return
	}
	buf := make([]byte, n)
	s.ReadAt(src, buf)
	s.WriteAt(dst, buf)
}

// Zero clears n bytes starting at addr.
func (s *SparseStore) Zero(addr, n uint64) {
	zero := make([]byte, 4*KiB)
	for n > 0 {
		c := uint64(len(zero))
		if c > n {
			c = n
		}
		s.WriteAt(addr, zero[:c])
		addr += c
		n -= c
	}
}

// Frames returns the number of allocated 4 KiB frames (resident set).
func (s *SparseStore) Frames() int { return len(s.frames) }

// Snapshot returns a deep copy of the store. Used to model the NVDIMM
// supercap backup image taken at power failure.
func (s *SparseStore) Snapshot() *SparseStore {
	c := NewSparseStore()
	for fid, f := range s.frames {
		nf := *f
		c.frames[fid] = &nf
	}
	return c
}

// Restore replaces the contents of s with the snapshot's contents.
func (s *SparseStore) Restore(snap *SparseStore) {
	s.frames = make(map[uint64]*[frameSize]byte, len(snap.frames))
	for fid, f := range snap.frames {
		nf := *f
		s.frames[fid] = &nf
	}
}
