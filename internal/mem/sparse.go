package mem

// SparseStore is a byte-addressable backing store that allocates 4 KiB
// frames lazily. It lets the simulator model terabyte address spaces
// (the 800 GB ULL-Flash archive, an 8 GB NVDIMM) while only paying for
// pages a workload actually touches. Unwritten bytes read as zero.
//
// Frames are indexed by a two-level radix table (frame id split into
// chunk / offset) instead of a map: the per-access lookups on the
// simulator's hot path become two slice loads, and iteration order
// (Snapshot/Restore, Frames) is deterministic by construction.
type SparseStore struct {
	chunks [][]*[frameSize]byte // fid>>framesPerChunkBits → chunk
	n      int                  // allocated frames
}

const (
	frameSize          = 4 * KiB
	framesPerChunkBits = 12 // 4096 frame pointers (32 KiB) per chunk
	framesPerChunk     = 1 << framesPerChunkBits
	frameChunkMask     = framesPerChunk - 1
)

var zeroFrame [frameSize]byte

// NewSparseStore returns an empty store.
func NewSparseStore() *SparseStore { return &SparseStore{} }

// frame returns the frame holding fid, or nil when never written.
func (s *SparseStore) frame(fid uint64) *[frameSize]byte {
	ci := fid >> framesPerChunkBits
	if ci >= uint64(len(s.chunks)) || s.chunks[ci] == nil {
		return nil
	}
	return s.chunks[ci][fid&frameChunkMask]
}

// ensureFrame returns the frame holding fid, allocating it if needed.
func (s *SparseStore) ensureFrame(fid uint64) *[frameSize]byte {
	ci := fid >> framesPerChunkBits
	for uint64(len(s.chunks)) <= ci {
		s.chunks = append(s.chunks, nil)
	}
	if s.chunks[ci] == nil {
		s.chunks[ci] = make([]*[frameSize]byte, framesPerChunk)
	}
	f := s.chunks[ci][fid&frameChunkMask]
	if f == nil {
		f = new([frameSize]byte)
		s.chunks[ci][fid&frameChunkMask] = f
		s.n++
	}
	return f
}

// ReadAt copies len(p) bytes starting at addr into p.
func (s *SparseStore) ReadAt(addr uint64, p []byte) {
	for len(p) > 0 {
		fid := addr / frameSize
		off := addr % frameSize
		n := frameSize - off
		if n > uint64(len(p)) {
			n = uint64(len(p))
		}
		if f := s.frame(fid); f != nil {
			copy(p[:n], f[off:off+n])
		} else {
			copy(p[:n], zeroFrame[:n])
		}
		p = p[n:]
		addr += n
	}
}

// WriteAt copies p into the store starting at addr.
func (s *SparseStore) WriteAt(addr uint64, p []byte) {
	for len(p) > 0 {
		fid := addr / frameSize
		off := addr % frameSize
		n := frameSize - off
		if n > uint64(len(p)) {
			n = uint64(len(p))
		}
		f := s.ensureFrame(fid)
		copy(f[off:off+n], p[:n])
		p = p[n:]
		addr += n
	}
}

// Copy moves n bytes from src to dst within the store, tolerating
// overlap (used for page clones into the PRP pool).
func (s *SparseStore) Copy(dst, src uint64, n uint64) {
	if n == 0 || dst == src {
		return
	}
	if dst < src+n && src < dst+n {
		// Overlapping ranges: stage the whole source first so the copy
		// behaves like memmove. Never hit by the PRP-clone hot path,
		// whose pool is disjoint from the cache region.
		buf := make([]byte, n)
		s.ReadAt(src, buf)
		s.WriteAt(dst, buf)
		return
	}
	var buf [frameSize]byte
	for n > 0 {
		c := uint64(frameSize)
		if c > n {
			c = n
		}
		s.ReadAt(src, buf[:c])
		s.WriteAt(dst, buf[:c])
		src += c
		dst += c
		n -= c
	}
}

// Zero clears n bytes starting at addr.
func (s *SparseStore) Zero(addr, n uint64) {
	for n > 0 {
		c := uint64(frameSize)
		if c > n {
			c = n
		}
		s.WriteAt(addr, zeroFrame[:c])
		addr += c
		n -= c
	}
}

// Frames returns the number of allocated 4 KiB frames (resident set).
func (s *SparseStore) Frames() int { return s.n }

// Snapshot returns a deep copy of the store. Used to model the NVDIMM
// supercap backup image taken at power failure.
func (s *SparseStore) Snapshot() *SparseStore {
	c := NewSparseStore()
	c.chunks = make([][]*[frameSize]byte, len(s.chunks))
	for ci, ch := range s.chunks {
		if ch == nil {
			continue
		}
		nc := make([]*[frameSize]byte, framesPerChunk)
		for i, f := range ch {
			if f != nil {
				nf := *f
				nc[i] = &nf
				c.n++
			}
		}
		c.chunks[ci] = nc
	}
	return c
}

// Restore replaces the contents of s with the snapshot's contents.
func (s *SparseStore) Restore(snap *SparseStore) {
	r := snap.Snapshot()
	s.chunks = r.chunks
	s.n = r.n
}
