package mem

// PageLRU is an allocation-light LRU index over a sparse page-number
// key space, shared by the simulator's big page caches (the OS page
// cache, the baseline DRAM caches, the SSD internal buffer). It
// replaces the map[uint64]*entry + container/list pattern: slots live
// in flat parallel slices threaded into an intrusive doubly-linked
// list, and the page→slot lookup is a lazily allocated chunked radix
// table — so steady-state insert/touch/evict traffic allocates nothing
// and leaves no per-entry pointers for the garbage collector to trace.
//
// PageLRU stores only the recency order; callers keep per-slot payload
// (dirty bits, data buffers) in their own slices indexed by the slot
// numbers PageLRU hands out. Slot numbers are stable for the lifetime
// of the entry and are recycled after removal.
type PageLRU struct {
	chunks     [][]int32 // page>>lruChunkBits → chunk; entry = slot+1, 0 = absent
	pages      []uint64  // slot → page
	prev, next []int32   // intrusive list; prev points toward the front (MRU)
	head, tail int32     // front (most recent) / back (least recent); -1 = empty
	free       []int32   // recycled slots
	n          int
}

const (
	lruChunkBits = 14
	lruChunkSize = 1 << lruChunkBits
	lruChunkMask = lruChunkSize - 1
)

// NewPageLRU returns an empty index.
func NewPageLRU() *PageLRU {
	return &PageLRU{head: -1, tail: -1}
}

// Len returns the number of resident pages.
func (l *PageLRU) Len() int { return l.n }

// Slots returns the size of the slot space; callers size their payload
// slices to it.
func (l *PageLRU) Slots() int { return len(l.pages) }

// Get returns the slot holding page, without touching recency.
func (l *PageLRU) Get(page uint64) (int32, bool) {
	ci := page >> lruChunkBits
	if ci >= uint64(len(l.chunks)) || l.chunks[ci] == nil {
		return 0, false
	}
	v := l.chunks[ci][page&lruChunkMask]
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// PageOf returns the page held by slot.
func (l *PageLRU) PageOf(slot int32) uint64 { return l.pages[slot] }

func (l *PageLRU) unlink(slot int32) {
	p, nx := l.prev[slot], l.next[slot]
	if p >= 0 {
		l.next[p] = nx
	} else {
		l.head = nx
	}
	if nx >= 0 {
		l.prev[nx] = p
	} else {
		l.tail = p
	}
}

func (l *PageLRU) pushFront(slot int32) {
	l.prev[slot] = -1
	l.next[slot] = l.head
	if l.head >= 0 {
		l.prev[l.head] = slot
	}
	l.head = slot
	if l.tail < 0 {
		l.tail = slot
	}
}

// MoveToFront marks slot most recently used.
func (l *PageLRU) MoveToFront(slot int32) {
	if l.head == slot {
		return
	}
	l.unlink(slot)
	l.pushFront(slot)
}

func (l *PageLRU) index(page uint64, v int32) {
	ci := page >> lruChunkBits
	for uint64(len(l.chunks)) <= ci {
		l.chunks = append(l.chunks, nil)
	}
	if l.chunks[ci] == nil {
		l.chunks[ci] = make([]int32, lruChunkSize)
	}
	l.chunks[ci][page&lruChunkMask] = v
}

// InsertFront inserts page (which must not be resident) at the front
// and returns its slot. When the slot space grew, the returned slot
// equals the previous Slots() value — callers grow payload slices in
// step.
func (l *PageLRU) InsertFront(page uint64) int32 {
	var slot int32
	if k := len(l.free); k > 0 {
		slot = l.free[k-1]
		l.free = l.free[:k-1]
	} else {
		slot = int32(len(l.pages))
		l.pages = append(l.pages, 0)
		l.prev = append(l.prev, 0)
		l.next = append(l.next, 0)
	}
	l.pages[slot] = page
	l.pushFront(slot)
	l.index(page, slot+1)
	l.n++
	return slot
}

// TailSlot returns the least recently used slot, or -1 when empty.
func (l *PageLRU) TailSlot() int32 { return l.tail }

// PrevOf returns the next-newer slot in recency order (toward the
// front), or -1. Walking TailSlot→PrevOf visits oldest to newest.
func (l *PageLRU) PrevOf(slot int32) int32 { return l.prev[slot] }

// Remove evicts slot. The slot number is recycled by a later insert;
// callers must consume any payload before then.
func (l *PageLRU) Remove(slot int32) {
	l.unlink(slot)
	page := l.pages[slot]
	l.chunks[page>>lruChunkBits][page&lruChunkMask] = 0
	l.free = append(l.free, slot)
	l.n--
}

// RemoveBack evicts the least recently used page, returning its page
// number and (recycled) slot. It must not be called on an empty index.
func (l *PageLRU) RemoveBack() (uint64, int32) {
	slot := l.tail
	page := l.pages[slot]
	l.Remove(slot)
	return page, slot
}
