package mem

import "testing"

// BenchmarkSparseStoreWrite measures 64-byte stores striding across a
// 64 MiB resident set — the shape of cache-line traffic against the
// NVDIMM store. Frames are pre-touched so the loop times the radix
// lookup and copy, not lazy allocation.
func BenchmarkSparseStoreWrite(b *testing.B) {
	const span = 64 * MiB
	s := NewSparseStore()
	s.Zero(0, span)
	var buf [64]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 4096) % span
		s.WriteAt(addr, buf[:])
	}
}

// BenchmarkSparseStoreRead is the load-side counterpart.
func BenchmarkSparseStoreRead(b *testing.B) {
	const span = 64 * MiB
	s := NewSparseStore()
	s.Zero(0, span)
	var buf [64]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 4096) % span
		s.ReadAt(addr, buf[:])
	}
}

// BenchmarkSparseStorePageCopy measures full-page transfers (the fill
// and writeback payload path).
func BenchmarkSparseStorePageCopy(b *testing.B) {
	const span = 64 * MiB
	s := NewSparseStore()
	s.Zero(0, span)
	page := make([]byte, 128*KiB)
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * uint64(len(page))) % span
		s.WriteAt(addr, page)
		s.ReadAt(addr, page)
	}
}

// TestSparseStoreZeroAllocs pins the resident-set access contract:
// reads and writes to already-touched frames allocate nothing.
func TestSparseStoreZeroAllocs(t *testing.T) {
	s := NewSparseStore()
	s.Zero(0, 4*MiB)
	var buf [64]byte
	var addr uint64
	avg := testing.AllocsPerRun(200, func() {
		s.WriteAt(addr%(4*MiB), buf[:])
		s.ReadAt(addr%(4*MiB), buf[:])
		addr += 4096
	})
	if avg != 0 {
		t.Fatalf("resident access allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkPageLRUTouch measures the hit-path recency update: radix
// lookup + move-to-front on a full LRU.
func BenchmarkPageLRUTouch(b *testing.B) {
	const n = 4096
	l := NewPageLRU()
	for p := uint64(0); p < n; p++ {
		l.InsertFront(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot, ok := l.Get(uint64(i) % n)
		if !ok {
			b.Fatal("page not resident")
		}
		l.MoveToFront(slot)
	}
}

// BenchmarkPageLRUEvictInsert measures the miss path: evict the LRU
// tail and install a page, steady state (slots recycled).
func BenchmarkPageLRUEvictInsert(b *testing.B) {
	const n = 4096
	l := NewPageLRU()
	for p := uint64(0); p < n; p++ {
		l.InsertFront(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page, _ := l.RemoveBack()
		l.InsertFront(page)
	}
}
