# Build hamsd into a from-scratch image: the simulator is pure Go
# (CGO_ENABLED=0, stdlib-only), so the runtime stage needs nothing but
# the static binary.
FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/hamsd ./cmd/hamsd

FROM scratch
COPY --from=build /out/hamsd /hamsd
# See cmd/hamsd doc (or EXPERIMENTS.md) for the full HAMSD_* variable
# table; everything is env-configured, no flags and no config files.
ENV HAMSD_ADDR=:8080
EXPOSE 8080
ENTRYPOINT ["/hamsd"]
