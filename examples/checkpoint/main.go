// In-memory checkpointing on HAMS: the paper's intro cites real-time
// checkpointing [12] as a key NVDIMM workload. A solver iterates over
// a state vector in the MoS space and checkpoints it with plain memory
// copies — no serialization, no filesystem. After a crash, the run
// resumes from the last checkpoint instead of recomputing from zero.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"hams"
)

const (
	cells      = 1 << 16 // state vector entries (8 B each)
	stateBase  = uint64(0)
	ckptBase   = uint64(1) << 30 // checkpoint area, far from the state
	headerBase = uint64(2) << 30 // {iteration, valid magic}
	magic      = 0x51A7E
)

type solver struct {
	m     *hams.MoS
	state []uint64 // host-side working copy (the hot compute loop)
}

// step advances the toy stencil one iteration.
func (s *solver) step() {
	n := len(s.state)
	prev := s.state[n-1]
	for i := 0; i < n; i++ {
		cur := s.state[i]
		s.state[i] = cur*3 + prev + 1
		prev = cur
	}
}

// checkpoint copies the state into the MoS checkpoint area and then
// publishes the header — write-ordering gives crash consistency, and
// the NVDIMM journal makes the copies durable.
func (s *solver) checkpoint(iter uint64) error {
	buf := make([]byte, 8*len(s.state))
	for i, v := range s.state {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	if _, err := s.m.Write(ckptBase, buf); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], iter)
	binary.LittleEndian.PutUint64(hdr[8:], magic)
	_, err := s.m.Write(headerBase, hdr[:])
	return err
}

// restore loads the last published checkpoint, if any.
func (s *solver) restore() (uint64, bool, error) {
	var hdr [16]byte
	if _, err := s.m.Read(headerBase, hdr[:]); err != nil {
		return 0, false, err
	}
	if binary.LittleEndian.Uint64(hdr[8:]) != magic {
		return 0, false, nil
	}
	iter := binary.LittleEndian.Uint64(hdr[0:])
	buf := make([]byte, 8*len(s.state))
	if _, err := s.m.Read(ckptBase, buf); err != nil {
		return 0, false, err
	}
	for i := range s.state {
		s.state[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return iter, true, nil
}

func main() {
	cfg := hams.DefaultConfig(hams.Extend, hams.Tight)
	cfg.NVDIMM.DRAM.Capacity = 32 * hams.MiB
	cfg.PinnedBytes = 8 * hams.MiB
	cfg.PageBytes = 64 * hams.KiB
	m, err := hams.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := &solver{m: m, state: make([]uint64, cells)}

	const totalIters = 40
	const ckptEvery = 10
	fmt.Printf("running %d iterations over a %.1f MB state, checkpoint every %d\n",
		totalIters, float64(cells*8)/1e6, ckptEvery)

	crashAt := uint64(27)
	for i := uint64(1); i <= crashAt; i++ {
		s.step()
		if i%ckptEvery == 0 {
			if err := s.checkpoint(i); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  checkpoint @ iter %d (t=%v)\n", i, m.Now())
		}
	}
	want := append([]uint64(nil), s.state...) // the state we'd lose

	fmt.Printf("\nCRASH at iteration %d\n", crashAt)
	m.PowerFail()
	if _, err := m.Recover(); err != nil {
		log.Fatal(err)
	}

	// A fresh process restores from the MoS space.
	s2 := &solver{m: m, state: make([]uint64, cells)}
	iter, ok, err := s2.restore()
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatal("no checkpoint found after crash")
	}
	fmt.Printf("restored checkpoint @ iter %d; replaying %d iterations\n", iter, crashAt-iter)
	for i := iter + 1; i <= crashAt; i++ {
		s2.step()
	}
	for i := range want {
		if want[i] != s2.state[i] {
			log.Fatalf("state divergence at cell %d", i)
		}
	}
	fmt.Printf("state verified: %d cells identical after crash + replay\n", cells)
	fmt.Printf("work saved: %d of %d iterations did not need recomputation\n", iter, crashAt)
}
