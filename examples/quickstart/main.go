// Quickstart: build a HAMS Memory-over-Storage instance, write and
// read through the byte-addressable MoS space, and look at the cache
// behaviour that makes it DRAM-fast.
package main

import (
	"fmt"
	"log"

	"hams"
)

func main() {
	// Advanced HAMS (tight topology) in extend mode: the paper's
	// best-performing configuration (hams-TE).
	cfg := hams.DefaultConfig(hams.Extend, hams.Tight)
	// Shrink the NVDIMM so the example runs instantly; the archive
	// stays hundreds of GB.
	cfg.NVDIMM.DRAM.Capacity = 64 * hams.MiB
	cfg.PinnedBytes = 16 * hams.MiB // queues + 64-slot PRP pool of 128 KB pages

	m, err := hams.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MoS address space: %.1f GB, byte-addressable, persistent\n",
		float64(m.Capacity())/float64(hams.GiB))
	fmt.Printf("NVDIMM cache: %d pages of %d KB\n\n",
		(cfg.NVDIMM.DRAM.Capacity-cfg.PinnedBytes)/cfg.PageBytes, cfg.PageBytes/1024)

	// First touch misses: HAMS composes an NVMe fill in hardware.
	msg := []byte("hello, memory-over-storage")
	r, err := m.Write(1*hams.GiB, msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold write : %8v  (miss: hardware fill from ULL-Flash)\n", r.Done-0)

	// Subsequent accesses hit the NVDIMM at DRAM speed.
	before := m.Now()
	got := make([]byte, len(msg))
	r, err = m.Read(1*hams.GiB, got)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm read  : %8v  (hit: served by NVDIMM)\n", r.Done-before)
	fmt.Printf("data       : %q\n\n", got)

	st := m.Stats()
	fmt.Printf("stats: %d accesses, %.0f%% hit rate, %d fills, %d evictions\n",
		st.Accesses, st.HitRate()*100, st.Fills, st.Evictions)
}
