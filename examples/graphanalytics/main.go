// Graph analytics on HAMS as a working-memory expansion: a CSR graph
// larger than the NVDIMM is laid out in the MoS space and traversed
// with BFS using plain loads — the OS-transparent memory-expansion
// use-case of §I. The NVDIMM cache absorbs frontier locality while
// cold adjacency lists stream from the ULL-Flash archive in hardware.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"hams"
)

// csrGraph lays out a synthetic power-law-ish graph in MoS space:
// an offsets array (8 B per vertex + 1) followed by the edge array
// (4 B per edge).
type csrGraph struct {
	m        *hams.MoS
	vertices uint64
	edges    uint64
	edgeBase uint64
}

func buildGraph(m *hams.MoS, vertices, degree uint64) (*csrGraph, error) {
	g := &csrGraph{m: m, vertices: vertices}
	g.edgeBase = (vertices + 1) * 8
	var off uint64
	rng := uint64(99991)
	// Write offsets and per-vertex adjacency in batched stores.
	offBuf := make([]byte, 8)
	for v := uint64(0); v <= vertices; v++ {
		binary.LittleEndian.PutUint64(offBuf, off)
		if _, err := m.Write(v*8, offBuf); err != nil {
			return nil, err
		}
		if v == vertices {
			break
		}
		d := degree/2 + (v % degree) // varied degrees
		adj := make([]byte, d*4)
		for e := uint64(0); e < d; e++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			// Mostly-local neighbors: graph partitions have locality.
			nb := (v + (rng>>33)%1024 + 1) % vertices
			binary.LittleEndian.PutUint32(adj[e*4:], uint32(nb))
		}
		if _, err := m.Write(g.edgeBase+off*4, adj); err != nil {
			return nil, err
		}
		off += d
	}
	g.edges = off
	return g, nil
}

func (g *csrGraph) neighbors(v uint64) ([]uint32, error) {
	var ob [16]byte
	if _, err := g.m.Read(v*8, ob[:]); err != nil {
		return nil, err
	}
	lo := binary.LittleEndian.Uint64(ob[0:])
	hi := binary.LittleEndian.Uint64(ob[8:])
	if hi <= lo {
		return nil, nil
	}
	raw := make([]byte, (hi-lo)*4)
	if _, err := g.m.Read(g.edgeBase+lo*4, raw); err != nil {
		return nil, err
	}
	out := make([]uint32, hi-lo)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(raw[i*4:])
	}
	return out, nil
}

// bfs runs a level-synchronous BFS from src and returns the number of
// reached vertices and the frontier depth.
func (g *csrGraph) bfs(src uint64) (reached, depth int, err error) {
	visited := make(map[uint64]bool, 1024)
	frontier := []uint64{src}
	visited[src] = true
	for len(frontier) > 0 {
		depth++
		var next []uint64
		for _, v := range frontier {
			nbs, err := g.neighbors(v)
			if err != nil {
				return 0, 0, err
			}
			for _, nb := range nbs {
				if !visited[uint64(nb)] {
					visited[uint64(nb)] = true
					next = append(next, uint64(nb))
				}
			}
		}
		frontier = next
		if depth > 64 {
			break
		}
	}
	return len(visited), depth, nil
}

func main() {
	cfg := hams.DefaultConfig(hams.Extend, hams.Tight)
	// 16 MiB NVDIMM cache vs a graph an order of magnitude larger:
	// true memory expansion.
	cfg.NVDIMM.DRAM.Capacity = 24 * hams.MiB
	cfg.PinnedBytes = 8 * hams.MiB
	cfg.PageBytes = 64 * hams.KiB
	m, err := hams.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const vertices = 400_000
	const degree = 24
	fmt.Printf("building a %d-vertex CSR graph in the MoS space...\n", vertices)
	g, err := buildGraph(m, vertices, degree)
	if err != nil {
		log.Fatal(err)
	}
	footprint := (g.vertices+1)*8 + g.edges*4
	fmt.Printf("graph: %d edges, %.1f MB footprint vs %.0f MB NVDIMM cache\n",
		g.edges, float64(footprint)/1e6,
		float64(cfg.NVDIMM.DRAM.Capacity-cfg.PinnedBytes)/1e6)

	buildStats := m.Stats()
	start := m.Now()
	reached, depth, err := g.bfs(0)
	if err != nil {
		log.Fatal(err)
	}
	st := m.Stats()
	fmt.Printf("\nBFS: reached %d vertices in %d levels, %v simulated\n",
		reached, depth, m.Now()-start)
	fmt.Printf("traversal accesses: %d (%.1f%% NVDIMM hit rate, %d hardware fills)\n",
		st.Accesses-buildStats.Accesses, st.HitRate()*100, st.Fills-buildStats.Fills)
	fmt.Println("\nno mmap, no page faults, no filesystem — the MCH did all of it.")
}
