#!/bin/sh
# End-to-end hamsd walkthrough against a daemon on $HAMSD_URL
# (default localhost:8080). Mirrors examples/hamsd/README.md; also the
# substance of the CI smoke job.
set -eu

URL="${HAMSD_URL:-http://localhost:8080}"
DIR="$(dirname "$0")"

echo "== health =="
curl -fsS "$URL/healthz"

echo "== submit run.json =="
ID=$(curl -fsS -X POST "$URL/v1/jobs" -d @"$DIR/run.json" |
	sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
echo "accepted: $ID"

echo "== poll to completion =="
for _ in $(seq 1 600); do
	STATE=$(curl -fsS "$URL/v1/jobs/$ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
	case "$STATE" in
	done) break ;;
	failed | canceled)
		echo "job ended $STATE" >&2
		exit 1
		;;
	esac
	sleep 0.5
done
[ "$STATE" = done ] || { echo "timed out in state $STATE" >&2; exit 1; }

echo "== cells (NDJSON) =="
CELLS=$(curl -fsS "$URL/v1/jobs/$ID/cells")
echo "$CELLS"
[ -n "$CELLS" ] || { echo "empty cell stream" >&2; exit 1; }

echo "== stats =="
curl -fsS "$URL/v1/stats"
echo "walkthrough OK"
