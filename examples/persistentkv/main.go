// Persistent KV store on HAMS: a hash table laid out directly in the
// MoS address space — no filesystem, no serialization, just loads and
// stores — that survives a power failure cut mid-flight. This is the
// paper's motivating use-case: DBMS-class software using load/store
// persistence (§I).
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"hams"
)

// kv is a fixed-bucket hash table in MoS space. Each bucket is 64 B:
// 8 B key, 4 B length, up to 48 B value, 4 B valid magic.
type kv struct {
	m       *hams.MoS
	buckets uint64
}

const bucketBytes = 64
const magic = 0xCAFEBABE

func (s *kv) bucketAddr(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return (h % s.buckets) * bucketBytes
}

// Put stores a value (≤ 48 bytes) under key with linear probing.
func (s *kv) Put(key uint64, val []byte) error {
	if len(val) > 48 {
		return fmt.Errorf("value too large")
	}
	addr := s.bucketAddr(key)
	for probe := 0; probe < 64; probe++ {
		var hdr [16]byte
		if _, err := s.m.Read(addr, hdr[:]); err != nil {
			return err
		}
		k := binary.LittleEndian.Uint64(hdr[0:])
		mg := binary.LittleEndian.Uint32(hdr[12:])
		if mg != magic || k == key {
			var slot [bucketBytes]byte
			binary.LittleEndian.PutUint64(slot[0:], key)
			binary.LittleEndian.PutUint32(slot[8:], uint32(len(val)))
			copy(slot[16:], val)
			binary.LittleEndian.PutUint32(slot[12:], magic)
			_, err := s.m.Write(addr, slot[:])
			return err
		}
		addr = (addr + bucketBytes) % (s.buckets * bucketBytes)
	}
	return fmt.Errorf("table full around key %d", key)
}

// Get fetches the value stored under key.
func (s *kv) Get(key uint64) ([]byte, bool, error) {
	addr := s.bucketAddr(key)
	for probe := 0; probe < 64; probe++ {
		var slot [bucketBytes]byte
		if _, err := s.m.Read(addr, slot[:]); err != nil {
			return nil, false, err
		}
		mg := binary.LittleEndian.Uint32(slot[12:])
		if mg != magic {
			return nil, false, nil
		}
		if binary.LittleEndian.Uint64(slot[0:]) == key {
			n := binary.LittleEndian.Uint32(slot[8:])
			out := make([]byte, n)
			copy(out, slot[16:16+n])
			return out, true, nil
		}
		addr = (addr + bucketBytes) % (s.buckets * bucketBytes)
	}
	return nil, false, nil
}

func main() {
	cfg := hams.DefaultConfig(hams.Extend, hams.Tight)
	cfg.NVDIMM.DRAM.Capacity = 32 * hams.MiB
	cfg.PinnedBytes = 8 * hams.MiB
	cfg.PageBytes = 64 * hams.KiB
	m, err := hams.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	store := &kv{m: m, buckets: 1 << 20}

	const n = 200
	fmt.Printf("inserting %d records into a persistent KV store (no filesystem)\n", n)
	for i := uint64(0); i < n; i++ {
		if err := store.Put(i, []byte(fmt.Sprintf("value-of-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	st := m.Stats()
	fmt.Printf("after load: %d MoS accesses, %.1f%% NVDIMM hit rate, %d evictions\n",
		st.Accesses, st.HitRate()*100, st.Evictions)

	// Pull the plug mid-flight.
	rep := m.PowerFail()
	fmt.Printf("\npower failure: %d command(s) in flight, %d torn; supercap backup %v\n",
		rep.InFlight, rep.TornWrites, rep.BackupTime)
	rec, err := m.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d journal entries replayed in %v\n\n", rec.Replayed, rec.RestoreTime)

	// Every record must still be there — through the same API.
	for i := uint64(0); i < n; i++ {
		got, ok, err := store.Get(i)
		if err != nil {
			log.Fatal(err)
		}
		want := fmt.Sprintf("value-of-%d", i)
		if !ok || string(got) != want {
			log.Fatalf("record %d lost: ok=%v got=%q", i, ok, got)
		}
	}
	fmt.Printf("verified %d/%d records after the power cycle\n", n, n)
}
