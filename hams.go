// Package hams is the public API of the HAMS reproduction: a
// hardware-automated Memory-over-Storage (MoS) system that aggregates
// an NVDIMM-N and an ultra-low-latency flash archive into one large,
// byte-addressable, persistent memory space (Zhang et al., ISCA 2021).
//
// The package exposes three things:
//
//   - MoS — a functional HAMS instance: a byte-addressable address
//     space backed by the simulated NVDIMM cache + ULL-Flash archive,
//     with working power-failure recovery (journal-tag replay);
//   - the evaluation platforms and workloads of the paper (§VI-A),
//     for building custom studies;
//   - the experiment harness that regenerates every table and figure
//     (see EXPERIMENTS.md and cmd/hamsbench).
package hams

import (
	"fmt"

	"hams/internal/core"
	"hams/internal/mem"
	"hams/internal/sim"
)

// Capacity units re-exported for configuration convenience.
const (
	KiB = mem.KiB
	MiB = mem.MiB
	GiB = mem.GiB
)

// Time is a simulation timestamp in nanoseconds.
type Time = sim.Time

// Mode selects the persistency strategy.
type Mode = core.Mode

// Topology selects the datapath.
type Topology = core.Topology

// Re-exported mode/topology values (§VI-A platform naming).
const (
	Extend  = core.Extend  // parallel NVMe + journal-tag recovery (…E)
	Persist = core.Persist // FUA + single outstanding I/O (…P)
	Loose   = core.Loose   // ULL-Flash behind PCIe 3.0 x4 (hams-L…)
	Tight   = core.Tight   // ULL-Flash on the shared DDR4 bus (hams-T…)
)

// Replacement selects the tag-array victim policy when Config.Ways > 1.
type Replacement = core.Replacement

// Re-exported replacement policies for set-associative MoS caches.
const (
	LRU    = core.LRU    // least-recently-used (default)
	Clock  = core.Clock  // second-chance sweep
	Random = core.Random // uniform, deterministic per seed
)

// Config configures a MoS instance. The zero value is invalid; start
// from DefaultConfig. Beyond the paper's Table II knobs, the cache
// organization is configurable: Ways (associativity), Replacement
// (victim policy), Banks (independent controller banks the MoS page
// space is interleaved across), MSHRs (per-bank miss-status
// registers; >= 2 enables the non-blocking miss pipeline with
// deferred writebacks, miss coalescing and hit-under-miss) and
// QueueDepth (per-bank cap on outstanding NVMe commands). The
// defaults — one direct-mapped bank, blocking miss path — reproduce
// the paper's Figure 11 organization exactly.
type Config = core.Config

// DefaultConfig returns the paper's Table II configuration (8 GB
// NVDIMM, 800 GB-class Z-NAND archive, 128 KB MoS pages, one
// direct-mapped bank) in the given mode and topology.
func DefaultConfig(m Mode, t Topology) Config { return core.DefaultConfig(m, t) }

// AccessResult reports the timing of one memory request.
type AccessResult = core.AccessResult

// Stats aggregates controller activity.
type Stats = core.Stats

// MoS is one HAMS instance: a byte-addressable, persistent address
// space as large as the flash archive, served at NVDIMM speed on hits.
type MoS struct {
	ctl *core.Controller
	now sim.Time
}

// New builds a MoS from cfg.
func New(cfg Config) (*MoS, error) {
	ctl, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &MoS{ctl: ctl}, nil
}

// Capacity returns the MoS address-space size in bytes.
func (m *MoS) Capacity() uint64 { return m.ctl.Capacity() }

// PageBytes returns the MoS cache page size.
func (m *MoS) PageBytes() uint64 { return m.ctl.PageBytes() }

// Now returns the instance's virtual clock.
func (m *MoS) Now() Time { return m.now }

// Stats returns controller counters (hits, misses, evictions, latency
// decomposition, recovery replays).
func (m *MoS) Stats() Stats { return m.ctl.Stats() }

// Write stores p at addr, advancing the virtual clock by the modeled
// access latency.
func (m *MoS) Write(addr uint64, p []byte) (AccessResult, error) {
	r, err := m.ctl.Write(m.now, addr, p)
	if err != nil {
		return r, err
	}
	m.now = r.Done
	return r, nil
}

// Read fills p from addr, advancing the virtual clock.
func (m *MoS) Read(addr uint64, p []byte) (AccessResult, error) {
	r, err := m.ctl.Read(m.now, addr, p)
	if err != nil {
		return r, err
	}
	m.now = r.Done
	return r, nil
}

// Peek reads the current content without timing effects (debugging /
// verification).
func (m *MoS) Peek(addr uint64, p []byte) { m.ctl.PeekData(addr, p) }

// PowerFailReport summarizes a simulated power failure.
type PowerFailReport = core.PowerFailReport

// RecoverReport summarizes the power-up recovery procedure.
type RecoverReport = core.RecoverReport

// PowerFail simulates a sudden power loss at the current virtual time:
// in-flight DMAs are lost (torn on the device), the NVDIMM image —
// including the pinned region with the journal-tagged NVMe queues — is
// preserved by the supercap.
func (m *MoS) PowerFail() PowerFailReport {
	return m.ctl.PowerFail(m.now)
}

// Recover executes the Figure 15 power-up procedure: restore the
// NVDIMM image, scan the persisted submission queue for set journal
// tags, and re-issue every incomplete command.
func (m *MoS) Recover() (RecoverReport, error) {
	rep, err := m.ctl.Recover(m.now)
	if err != nil {
		return rep, err
	}
	if rep.Done > m.now {
		m.now = rep.Done
	}
	return rep, nil
}

// Advance moves the virtual clock forward (e.g. to model think time
// between requests); it never rewinds.
func (m *MoS) Advance(d Time) {
	if d > 0 {
		m.now += d
	}
}

// String describes the instance.
func (m *MoS) String() string {
	return fmt.Sprintf("MoS(%s, %.0f GB, now=%v)", m.ctl, float64(m.Capacity())/float64(GiB), m.now)
}
