# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GOBIN := $(CURDIR)/bin

.PHONY: all build test test-shuffle race lint hamslint fmt clean

all: build test lint

build:
	go build ./...

test:
	go test ./...

# Shuffled order flushes out inter-test coupling; -count=1 defeats the
# cache so everything actually reruns.
test-shuffle:
	go test -shuffle=on -count=1 ./...

race:
	go test -race ./...

# lint = formatting + go vet + the repo's own contract linter. A
# hamslint finding fails the target; suppress only with a reasoned
# //hamslint:allow <analyzer> — <reason> (see EXPERIMENTS.md).
lint: fmt hamslint
	go vet ./...

hamslint: $(GOBIN)/hamslint
	go vet -vettool=$(GOBIN)/hamslint ./...

# Rebuild unconditionally: the binary hashes itself into vet's cache
# key, so a stale tool would silently lint with old analyzers.
$(GOBIN)/hamslint: FORCE
	go build -o $(GOBIN)/hamslint ./cmd/hamslint

FORCE:

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

clean:
	rm -rf $(GOBIN)
