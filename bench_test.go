// Benchmarks: one per table/figure of the paper's evaluation. Each
// benchmark regenerates the corresponding artifact through the same
// code path as cmd/hamsbench; the reported ns/op is the cost of
// producing the whole figure at the benchmark scale. Run the CLI with
// a larger -scale for publication-shaped numbers (EXPERIMENTS.md).
package hams

import (
	"testing"

	"hams/internal/experiments"
)

// benchOpts keeps `go test -bench=.` under a few minutes end to end.
// Parallel is 0 (= GOMAXPROCS), so every engine-ported figure
// benchmark exercises the concurrent path by default; the *Serial
// variants below measure the 1-worker baseline for comparison.
var benchOpts = experiments.Options{Scale: 5e-7, Seed: 42}

// serialOpts pins the engine to one worker.
var serialOpts = experiments.Options{Scale: 5e-7, Seed: 42, Parallel: 1}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table3().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Fig5(benchOpts)
		if err != nil || len(tabs) != 3 {
			b.Fatal("Fig5", err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig17(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig18(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig19(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig20(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Headline(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMoSHit measures the steady-state NVDIMM-hit path of the
// public API (the latency the paper calls "DRAM-like").
func BenchmarkMoSHit(b *testing.B) {
	cfg := DefaultConfig(Extend, Tight)
	cfg.NVDIMM.DRAM.Capacity = 64 * MiB
	cfg.PinnedBytes = 16 * MiB
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := m.Write(0, buf); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Read(0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMoSMissFill measures the hardware miss path (NVMe fill
// composed by the controller).
func BenchmarkMoSMissFill(b *testing.B) {
	cfg := DefaultConfig(Extend, Tight)
	cfg.NVDIMM.DRAM.Capacity = 64 * MiB
	cfg.PinnedBytes = 16 * MiB
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	stride := m.PageBytes() * uint64(m.Stats().Accesses+1)
	_ = stride
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * m.PageBytes()) % (m.Capacity() - 64)
		if _, err := m.Read(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// Serial-vs-parallel pairs: the ratio is the engine's speedup on this
// host (cells are independent, so it should approach min(GOMAXPROCS,
// cell count) for the wide matrices).

func BenchmarkFig16Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(serialOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig20(serialOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AssocShardSweep(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AssocShardSweep(serialOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay covers the full record → codec → replay → verify
// path of every replay cell (each cell runs its workload twice: live
// and replayed).
func BenchmarkReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Replay(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Mixed(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQoS runs the RDT-style isolation sweep (four CLOS policy
// cells over the stream+latency co-location scenario).
func BenchmarkQoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.QoS(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}
